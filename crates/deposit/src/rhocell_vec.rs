//! VPU-based rhocell deposition kernels.
//!
//! Two configurations of the same algorithm (the strongest VPU baselines
//! of the paper's Table 1/2 comparison):
//!
//! * [`RhocellKernel`] with `hand_tuned = false` — "Rhocell (auto-vec)": a
//!   faithful reproduction of the compiler-vectorised rhocell
//!   implementation; arithmetic is charged at the auto-vectorisation
//!   efficiency of the cost model (the paper observes compilers
//!   "struggle to vectorise" its preprocessing).
//! * `hand_tuned = true` — "Rhocell (VPU)": the manually vectorised
//!   variant with full intrinsic throughput.
//!
//! Both accumulate per-cell node vectors into the tile [`Rhocell`], which
//! removes the scatter conflicts of the baseline; combined with sorted
//! iteration the rhocell working set stays cache-resident, which is the
//! paper's `Rhocell+IncrSort` observation.

use mpic_machine::{LaneMask, Lanes, Machine, Phase, VAddr, VReg, VLANES};
use mpic_particles::cell_runs;

use crate::common::{PrepStyle, Staging};
use crate::kernel::{DepositionKernel, TileCtx, TileOutput};
use crate::rhocell::Rhocell;
use crate::shape::{MAX_NODES_3D, MAX_SUPPORT};

/// VPU rhocell kernel (auto-vectorised or hand-tuned).
#[derive(Debug, Clone, Copy)]
pub struct RhocellKernel {
    /// Whether the kernel models hand-written intrinsics (no
    /// auto-vectorisation penalty).
    pub hand_tuned: bool,
}

impl DepositionKernel for RhocellKernel {
    fn name(&self) -> &'static str {
        if self.hand_tuned {
            "rhocell_vpu"
        } else {
            "rhocell_autovec"
        }
    }

    fn prep_style(&self) -> PrepStyle {
        if self.hand_tuned {
            PrepStyle::VpuIntrinsics
        } else {
            PrepStyle::Autovec
        }
    }

    fn uses_rhocell(&self) -> bool {
        true
    }

    fn deposit_tile(&self, m: &mut Machine, ctx: &TileCtx, st: &Staging, out: &mut TileOutput) {
        let TileOutput::Rho { rho_addr, rho } = out else {
            panic!("rhocell kernel requires a rhocell output");
        };
        let _ = ctx.staging_addr;
        if ctx.batched {
            deposit_tile_batched(m, ctx, st, *rho_addr, rho, self.hand_tuned);
            return;
        }
        let s = ctx.order.support();
        let nodes = ctx.order.nodes_3d();
        m.in_phase(Phase::Compute, |m| {
            if !self.hand_tuned {
                m.use_autovec_model();
            }
            for p in 0..st.n {
                let cell = st.cell_local[p];
                // Staged term loads for this particle (register-blocked
                // in the real kernel; cache-blocked staging => issue
                // cost only).
                m.v_issue(2);

                // Precompute the s*s x-y products (2 vector ops for QSP's
                // 16 terms, 1 for CIC's 4). Stack-resident: support is at
                // most MAX_SUPPORT, so the hot loop never allocates.
                let mut sxy = [0.0; MAX_SUPPORT * MAX_SUPPORT];
                for b in 0..s {
                    for a in 0..s {
                        sxy[b * s + a] = st.s(0, a, p) * st.s(1, b, p);
                    }
                }
                m.v_ops((s * s).div_ceil(VLANES).max(1));

                // Hoist the three effective-current broadcasts out of the
                // node loop (one register each).
                let wq_reg = [
                    m.v_splat(st.wq[0][p]),
                    m.v_splat(st.wq[1][p]),
                    m.v_splat(st.wq[2][p]),
                ];

                // Sweep the node vector in full-width chunks; node id is
                // (c*s + b)*s + a with a fastest, so each chunk is a run
                // of x-y products times one or two sz terms.
                let mut node = 0;
                while node < nodes {
                    let w = (nodes - node).min(VLANES);
                    let mut svals = [0.0; VLANES];
                    for (l, val) in svals.iter_mut().enumerate().take(w) {
                        let nd = node + l;
                        let ab = nd % (s * s);
                        let c = nd / (s * s);
                        *val = sxy[ab] * st.s(2, c, p);
                    }
                    // One multiply to fold sz into the chunk.
                    let sreg = m.v_mul(VReg::from_slice(&svals[..w]), VReg::splat(1.0));
                    for comp in 0..3 {
                        let contrib = m.v_mul(sreg, wq_reg[comp]);
                        // rhocell accumulate: load + add + store of the
                        // cell's contiguous node slice.
                        let base = rho.index(comp, cell, node);
                        let addr = rho_addr.offset_f64(base);
                        let cur = m.v_load(addr, &rho.cell_slice(comp, cell)[node..node + w]);
                        let sum = m.v_add(cur, contrib);
                        let slice = rho.cell_slice_mut(comp, cell);
                        m.v_store(addr, sum, &mut slice[node..node + w], w);
                    }
                    node += w;
                }
            }
            m.use_intrinsics_model();
        });
    }
}

/// The cell-run batched rhocell sweep: each same-cell run accumulates
/// into a stack-resident stencil block (per-particle adds in particle
/// order, products identical to the per-particle kernel's lane
/// arithmetic) and the block is folded into the tile rhocell **once per
/// run** — one load/add/store pass per cell instead of one per particle.
/// Because a sorted tile has exactly one run per occupied cell and the
/// rhocell slice starts at +0.0, regrouping through the block reproduces
/// the per-particle accumulation bit for bit (the `batched_*`
/// equivalence tests pin this).
fn deposit_tile_batched(
    m: &mut Machine,
    ctx: &TileCtx,
    st: &Staging,
    rho_addr: VAddr,
    rho: &mut Rhocell,
    hand_tuned: bool,
) {
    let s = ctx.order.support();
    let nodes = ctx.order.nodes_3d();
    m.in_phase(Phase::Compute, |m| {
        if !hand_tuned {
            m.use_autovec_model();
        }
        let mut block = [[0.0f64; MAX_NODES_3D]; 3];
        for run in cell_runs(&st.cell_local[..st.n]) {
            let cell = run.cell;
            for comp in block.iter_mut() {
                comp[..nodes].fill(0.0);
            }
            for p in run.range() {
                m.v_issue(2); // Staged term loads (cache-blocked).

                // The s*s x-y products, as in the per-particle kernel.
                let mut sxy = [0.0; MAX_SUPPORT * MAX_SUPPORT];
                for b in 0..s {
                    for a in 0..s {
                        sxy[b * s + a] = st.s(0, a, p) * st.s(1, b, p);
                    }
                }
                m.v_ops((s * s).div_ceil(VLANES).max(1));
                m.v_issue(3); // The three wq broadcasts (no FLOPs).

                let wq = [st.wq[0][p], st.wq[1][p], st.wq[2][p]];
                let mut node = 0;
                while node < nodes {
                    let w = (nodes - node).min(VLANES);
                    m.v_ops(1); // Fold sz into the chunk.
                    if ctx.simd {
                        // Lane-parallel block accumulate: same products,
                        // same per-(comp, node) add order, identical
                        // charge calls — bitwise equal to the scalar arm.
                        // Ragged final chunks run masked (QSP's 64 nodes
                        // split evenly, TSC's 27 leave a 3-wide tail):
                        // inactive lanes never read or write past `w`.
                        let mask = LaneMask::prefix(w);
                        let mut svals = [0.0; VLANES];
                        for (l, v) in svals.iter_mut().enumerate().take(w) {
                            let nd = node + l;
                            *v = sxy[nd % (s * s)] * st.s(2, nd / (s * s), p);
                        }
                        let svals = Lanes(svals);
                        for comp in 0..3 {
                            m.v_ops(1); // Effective-current multiply.
                            m.v_issue(1); // Block accumulate (L1-resident).
                            Lanes::load_masked(&block[comp][node..node + w], mask)
                                .mul_acc_masked(svals, Lanes::splat(wq[comp]), mask)
                                .store_masked(&mut block[comp][node..node + w], mask);
                        }
                    } else {
                        for comp in 0..3 {
                            m.v_ops(1); // Effective-current multiply.
                            m.v_issue(1); // Block accumulate (L1-resident).
                            for l in 0..w {
                                let nd = node + l;
                                let ab = nd % (s * s);
                                let c = nd / (s * s);
                                let sval = sxy[ab] * st.s(2, c, p);
                                block[comp][nd] += sval * wq[comp];
                            }
                        }
                    }
                    node += w;
                }
            }
            // One load/add/store pass over the cell's rhocell slice per
            // run — the per-particle path pays this per particle. Sorted
            // runs visit consecutive cells, so under SIMD the pass is
            // priced as a dense ascending stream instead of a cache walk.
            for comp in 0..3 {
                let mut node = 0;
                while node < nodes {
                    let w = (nodes - node).min(VLANES);
                    let base = rho.index(comp, cell, node);
                    let addr = rho_addr.offset_f64(base);
                    let cur = if ctx.simd {
                        m.v_load_streamed(
                            addr,
                            &rho.cell_slice(comp, cell)[node..node + w],
                            rho.footprint_bytes(),
                        )
                    } else {
                        m.v_load(addr, &rho.cell_slice(comp, cell)[node..node + w])
                    };
                    let sum = m.v_add(cur, VReg::from_slice(&block[comp][node..node + w]));
                    let fp = rho.footprint_bytes();
                    let slice = rho.cell_slice_mut(comp, cell);
                    if ctx.simd {
                        m.v_store_streamed(addr, sum, &mut slice[node..node + w], w, fp);
                    } else {
                        m.v_store(addr, sum, &mut slice[node..node + w], w);
                    }
                    node += w;
                }
            }
        }
        m.use_intrinsics_model();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::ShapeOrder;
    use mpic_grid::GridGeometry;
    use mpic_machine::MachineConfig;

    /// The multiplication by splat(1.0) must not perturb values.
    #[test]
    fn splat_identity_is_exact() {
        let mut m = Machine::new(MachineConfig::lx2());
        let v = VReg::from_slice(&[0.1, 0.2, 0.3]);
        let r = m.v_mul(v, VReg::splat(1.0));
        assert_eq!(r.lane(0), 0.1);
        assert_eq!(r.lane(2), 0.3);
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(RhocellKernel { hand_tuned: true }.name(), "rhocell_vpu");
        assert_eq!(
            RhocellKernel { hand_tuned: false }.name(),
            "rhocell_autovec"
        );
        assert!(RhocellKernel { hand_tuned: true }.uses_rhocell());
    }

    #[test]
    fn hand_tuned_is_faster_than_autovec() {
        // Identical staged input, both deposit one tile; the auto-vec
        // variant must charge more cycles.
        use crate::common::stage_tile;
        use mpic_grid::TileLayout;
        use mpic_particles::{Departure, ParticleContainer};

        let geom = GridGeometry::new([4, 4, 4], [0.0; 3], [1.0e-6; 3], 2);
        let layout = TileLayout::new(&geom, [4, 4, 4]);
        let mut c = ParticleContainer::new(&layout, -1.0e-19, 9.1e-31);
        for i in 0..32 {
            let _ = c.inject(
                &layout,
                &geom,
                Departure {
                    x: (0.1 + (i as f64) * 0.11) % 3.9 * 1e-6,
                    y: 1.1e-6,
                    z: 2.3e-6,
                    ux: 0.1,
                    uy: 0.0,
                    uz: 0.0,
                    w: 1.0,
                },
            );
        }
        let mut cycles = Vec::new();
        for hand_tuned in [false, true] {
            let mut m = Machine::new(MachineConfig::lx2());
            let soa_addr = std::array::from_fn(|_| m.mem().alloc_f64(64));
            let staging = m.mem().alloc_f64(65536);
            let rho_addr = m.mem().alloc_f64(3 * 64 * 8);
            let tile = layout.tile(0);
            let iter: Vec<usize> = c.tiles[0].soa.live_indices().collect();
            let mut st = Staging::default();
            stage_tile(
                &mut m,
                &geom,
                tile,
                ShapeOrder::Cic,
                c.charge,
                &c.tiles[0].soa,
                &iter,
                &soa_addr,
                staging,
                if hand_tuned {
                    PrepStyle::VpuIntrinsics
                } else {
                    PrepStyle::Autovec
                },
                false,
                &mut st,
            );
            let mut rho = crate::rhocell::Rhocell::new(ShapeOrder::Cic, tile.num_cells());
            let k = RhocellKernel { hand_tuned };
            let ctx = TileCtx {
                geom: &geom,
                tile,
                order: ShapeOrder::Cic,
                staging_addr: staging,
                batched: false,
                simd: false,
            };
            let mut out = TileOutput::Rho {
                rho_addr,
                rho: &mut rho,
            };
            k.deposit_tile(&mut m, &ctx, &st, &mut out);
            cycles.push(m.counters().total_cycles());
        }
        assert!(
            cycles[0] > cycles[1],
            "autovec {} must exceed hand-tuned {}",
            cycles[0],
            cycles[1]
        );
    }
}
