//! Named kernel+sorting configurations matching the paper's evaluation
//! setup (section 5.2.1): the ablation set and the VPU-baseline
//! comparison set.

use mpic_particles::SortPolicy;

use crate::kernel::{Depositor, SortStrategy};
use crate::matrix::MatrixKernel;
use crate::rhocell_vec::RhocellKernel;
use crate::scalar::BaselineKernel;
use crate::shape::ShapeOrder;

/// Every configuration evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelConfig {
    /// The unmodified WarpX kernel (performance reference).
    Baseline,
    /// Baseline kernel + the incremental sorting algorithm.
    BaselineIncrSort,
    /// Compiler-vectorised rhocell (community-standard baseline).
    Rhocell,
    /// Rhocell + incremental sorting.
    RhocellIncrSort,
    /// Hand-tuned VPU rhocell + incremental sorting (strongest VPU
    /// competitor).
    RhocellIncrSortVpu,
    /// MPU-only kernel isolating raw MPU performance (scalar staging,
    /// no sorting).
    MatrixOnly,
    /// Hybrid MPU-VPU kernel without any sorting.
    HybridNoSort,
    /// Hybrid kernel with a full global sort every timestep.
    HybridGlobalSort,
    /// The complete MatrixPIC framework.
    FullOpt,
}

impl KernelConfig {
    /// All configurations, in the paper's reporting order.
    pub const ALL: [KernelConfig; 9] = [
        KernelConfig::Baseline,
        KernelConfig::BaselineIncrSort,
        KernelConfig::Rhocell,
        KernelConfig::RhocellIncrSort,
        KernelConfig::RhocellIncrSortVpu,
        KernelConfig::MatrixOnly,
        KernelConfig::HybridNoSort,
        KernelConfig::HybridGlobalSort,
        KernelConfig::FullOpt,
    ];

    /// The ablation-study subset (Figure 10).
    pub const ABLATION: [KernelConfig; 5] = [
        KernelConfig::Baseline,
        KernelConfig::MatrixOnly,
        KernelConfig::HybridNoSort,
        KernelConfig::HybridGlobalSort,
        KernelConfig::FullOpt,
    ];

    /// The VPU-comparison subset (Table 1).
    pub const VPU_COMPARISON: [KernelConfig; 6] = [
        KernelConfig::Baseline,
        KernelConfig::BaselineIncrSort,
        KernelConfig::Rhocell,
        KernelConfig::RhocellIncrSort,
        KernelConfig::RhocellIncrSortVpu,
        KernelConfig::FullOpt,
    ];

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            KernelConfig::Baseline => "Baseline (WarpX)",
            KernelConfig::BaselineIncrSort => "Baseline+IncrSort",
            KernelConfig::Rhocell => "Rhocell (auto-vec)",
            KernelConfig::RhocellIncrSort => "Rhocell+IncrSort",
            KernelConfig::RhocellIncrSortVpu => "Rhocell+IncrSort (VPU)",
            KernelConfig::MatrixOnly => "Matrix-only",
            KernelConfig::HybridNoSort => "Hybrid-noSort",
            KernelConfig::HybridGlobalSort => "Hybrid-GlobalSort",
            KernelConfig::FullOpt => "MatrixPIC (FullOpt)",
        }
    }

    /// Builds the configured deposition driver.
    pub fn build(self, order: ShapeOrder) -> Depositor {
        let incr = || SortStrategy::Incremental(SortPolicy::default());
        match self {
            KernelConfig::Baseline => {
                Depositor::new(Box::new(BaselineKernel), SortStrategy::None, order)
            }
            KernelConfig::BaselineIncrSort => {
                Depositor::new(Box::new(BaselineKernel), incr(), order)
            }
            KernelConfig::Rhocell => Depositor::new(
                Box::new(RhocellKernel { hand_tuned: false }),
                SortStrategy::None,
                order,
            ),
            KernelConfig::RhocellIncrSort => {
                Depositor::new(Box::new(RhocellKernel { hand_tuned: false }), incr(), order)
            }
            KernelConfig::RhocellIncrSortVpu => {
                Depositor::new(Box::new(RhocellKernel { hand_tuned: true }), incr(), order)
            }
            KernelConfig::MatrixOnly => Depositor::new(
                Box::new(MatrixKernel::matrix_only()),
                SortStrategy::None,
                order,
            ),
            KernelConfig::HybridNoSort => {
                Depositor::new(Box::new(MatrixKernel::hybrid()), SortStrategy::None, order)
            }
            KernelConfig::HybridGlobalSort => Depositor::new(
                Box::new(MatrixKernel::hybrid()),
                SortStrategy::GlobalEveryStep,
                order,
            ),
            KernelConfig::FullOpt => {
                Depositor::new(Box::new(MatrixKernel::hybrid()), incr(), order)
            }
        }
    }

    /// Peak FP64 rate (FLOPs/cycle) used as the denominator of the
    /// paper's Table 3 efficiency percentages.
    ///
    /// All CPU configurations are measured against the core's
    /// *conventional* FP64 vector peak (the VPU MLA rate). This is the
    /// only reading under which the paper's own numbers are mutually
    /// consistent: MatrixPIC's 83.08% would be arithmetically impossible
    /// against the MPU peak (the CIC/QSP mappings use at most 50% of
    /// each tile), and the VPU configuration's 54.58% could never exceed
    /// 25% if the MPU's 4x rate were counted into the peak. The MPU's
    /// extra density is precisely what lets MatrixPIC approach (and in
    /// principle exceed) 100% of the conventional peak.
    pub fn unit_peak_flops_per_cycle(self, cfg: &mpic_machine::MachineConfig) -> f64 {
        cfg.vpu_peak_flops_per_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_build() {
        for cfg in KernelConfig::ALL {
            for order in [ShapeOrder::Cic, ShapeOrder::Qsp] {
                let d = cfg.build(order);
                assert!(!d.name().is_empty());
                assert_eq!(d.order(), order);
            }
        }
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(KernelConfig::FullOpt.label(), "MatrixPIC (FullOpt)");
        assert_eq!(KernelConfig::Baseline.label(), "Baseline (WarpX)");
    }

    #[test]
    fn efficiency_denominator_is_conventional_vpu_peak() {
        // Table 3 percentages are measured against the core's standard
        // FP64 vector peak for every configuration (see method docs).
        let mc = mpic_machine::MachineConfig::lx2();
        for cfg in KernelConfig::ALL {
            assert_eq!(
                cfg.unit_peak_flops_per_cycle(&mc),
                mc.vpu_peak_flops_per_cycle()
            );
        }
    }
}
