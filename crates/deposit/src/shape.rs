//! B-spline particle shape functions (orders 1-3).
//!
//! The paper evaluates the first-order Cloud-in-Cell (CIC) scheme and the
//! third-order scheme it calls QSP; the second-order Triangular-Shaped
//! Cloud (TSC) is implemented as well since the MPU mapping extends to it
//! (section 4.2.1). All shapes are the standard centred B-splines used by
//! WarpX: order `n` spreads a particle over `n + 1` nodes per dimension
//! and its weights sum to exactly 1 for any intra-cell offset — the
//! charge-conservation property the property tests pin down.

/// Maximum support points of any implemented order.
pub const MAX_SUPPORT: usize = 4;

/// Maximum 3-D stencil nodes of any implemented order (QSP: 4^3), sizing
/// the stack-resident run blocks of the batched kernels.
pub const MAX_NODES_3D: usize = MAX_SUPPORT * MAX_SUPPORT * MAX_SUPPORT;

/// Interpolation order of the deposition/gather shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeOrder {
    /// First order: Cloud-in-Cell, 2 nodes/dim, 8 nodes in 3-D.
    Cic,
    /// Second order: Triangular-Shaped Cloud, 3 nodes/dim, 27 nodes.
    Tsc,
    /// Third order: cubic B-spline (the paper's "QSP"), 4 nodes/dim,
    /// 64 nodes in 3-D.
    Qsp,
}

impl ShapeOrder {
    /// Polynomial order (the WarpX `algo.particle_shape` value).
    pub fn order(self) -> usize {
        match self {
            ShapeOrder::Cic => 1,
            ShapeOrder::Tsc => 2,
            ShapeOrder::Qsp => 3,
        }
    }

    /// Builds from a WarpX-style order number.
    ///
    /// # Panics
    ///
    /// Panics on unsupported orders.
    pub fn from_order(order: usize) -> Self {
        match order {
            1 => ShapeOrder::Cic,
            2 => ShapeOrder::Tsc,
            3 => ShapeOrder::Qsp,
            o => panic!("unsupported particle shape order {o}"),
        }
    }

    /// Support points per dimension (`order + 1`).
    pub fn support(self) -> usize {
        self.order() + 1
    }

    /// Nodes touched in 3-D (`support^3`).
    pub fn nodes_3d(self) -> usize {
        let s = self.support();
        s * s * s
    }

    /// Offset of the first support node relative to the particle's cell
    /// index: CIC starts at the cell itself, TSC and QSP one node below.
    pub fn start_offset(self) -> i64 {
        match self {
            ShapeOrder::Cic => 0,
            ShapeOrder::Tsc | ShapeOrder::Qsp => -1,
        }
    }

    /// Evaluates the 1-D shape weights for intra-cell offset
    /// `d` in `[0, 1)`, writing `support()` weights into `out`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `d` is outside `[0, 1)`.
    #[inline]
    pub fn weights(self, d: f64, out: &mut [f64; MAX_SUPPORT]) {
        debug_assert!((0.0..1.0).contains(&d) || d.abs() < 1e-12, "d={d}");
        match self {
            ShapeOrder::Cic => {
                out[0] = 1.0 - d;
                out[1] = d;
                out[2] = 0.0;
                out[3] = 0.0;
            }
            ShapeOrder::Tsc => {
                // Centred TSC about the nearest of the 3 nodes
                // {cell-1, cell, cell+1}; xi = d - 1/2 in [-1/2, 1/2).
                let xi = d - 0.5;
                out[0] = 0.5 * (0.5 - xi) * (0.5 - xi);
                out[1] = 0.75 - xi * xi;
                out[2] = 0.5 * (0.5 + xi) * (0.5 + xi);
                out[3] = 0.0;
            }
            ShapeOrder::Qsp => {
                // Cubic B-spline over nodes {cell-1 .. cell+2}.
                let d2 = d * d;
                let d3 = d2 * d;
                let inv6 = 1.0 / 6.0;
                let omd = 1.0 - d;
                out[0] = inv6 * omd * omd * omd;
                out[1] = inv6 * (4.0 - 6.0 * d2 + 3.0 * d3);
                out[2] = inv6 * (1.0 + 3.0 * d + 3.0 * d2 - 3.0 * d3);
                out[3] = inv6 * d3;
            }
        }
    }

    /// FLOPs charged for one 1-D weight evaluation by the cost model
    /// (counts of the expressions in [`ShapeOrder::weights`]).
    pub fn weights_flops(self) -> usize {
        match self {
            ShapeOrder::Cic => 1,
            ShapeOrder::Tsc => 9,
            ShapeOrder::Qsp => 16,
        }
    }
}

/// Canonical useful FLOPs per particle of the scalar deposition
/// algorithm, used for peak-efficiency percentages (paper section 5.2.2).
///
/// The count covers: Lorentz factor + velocity recovery (13), the three
/// effective-current weights (6), three 1-D shape evaluations, and
/// `8 FLOPs x nodes` for the node loop (two multiplies for the tensor
/// shape product and three FMAs for the current components). The paper
/// quotes 419 FLOPs for QSP with its own counting convention; ours is
/// applied uniformly across all platforms and configurations, so the
/// *ratios* in Table 3 are directly comparable.
pub fn canonical_flops_per_particle(order: ShapeOrder) -> f64 {
    let pre = 13.0 + 6.0 + 3.0 * order.weights_flops() as f64;
    pre + 8.0 * order.nodes_3d() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORDERS: [ShapeOrder; 3] = [ShapeOrder::Cic, ShapeOrder::Tsc, ShapeOrder::Qsp];

    #[test]
    fn weights_sum_to_one() {
        for order in ORDERS {
            for i in 0..100 {
                let d = i as f64 / 100.0;
                let mut w = [0.0; MAX_SUPPORT];
                order.weights(d, &mut w);
                let sum: f64 = w.iter().sum();
                assert!((sum - 1.0).abs() < 1e-14, "{order:?} d={d} sum={sum}");
            }
        }
    }

    #[test]
    fn weights_nonnegative() {
        for order in ORDERS {
            for i in 0..100 {
                let d = i as f64 / 100.0;
                let mut w = [0.0; MAX_SUPPORT];
                order.weights(d, &mut w);
                assert!(w.iter().all(|&x| x >= -1e-15), "{order:?} d={d} {w:?}");
            }
        }
    }

    #[test]
    fn cic_is_linear() {
        let mut w = [0.0; MAX_SUPPORT];
        ShapeOrder::Cic.weights(0.25, &mut w);
        assert_eq!(w[0], 0.75);
        assert_eq!(w[1], 0.25);
    }

    #[test]
    fn tsc_peak_at_centre() {
        let mut w = [0.0; MAX_SUPPORT];
        ShapeOrder::Tsc.weights(0.5, &mut w);
        assert!((w[1] - 0.75).abs() < 1e-15);
        assert!((w[0] - 0.125).abs() < 1e-15);
        assert!((w[2] - 0.125).abs() < 1e-15);
    }

    #[test]
    fn qsp_symmetry() {
        // Weights at d and 1-d must be mirror images.
        let mut a = [0.0; MAX_SUPPORT];
        let mut b = [0.0; MAX_SUPPORT];
        ShapeOrder::Qsp.weights(0.3, &mut a);
        ShapeOrder::Qsp.weights(0.7, &mut b);
        for k in 0..4 {
            assert!((a[k] - b[3 - k]).abs() < 1e-14);
        }
    }

    #[test]
    fn qsp_continuity_across_cells() {
        // As a particle crosses a cell boundary, the weight attributed to
        // a fixed grid node must be continuous: node cell+1 seen with
        // d -> 1 (weight index 2) equals the same node seen from the next
        // cell with d = 0 (weight index 1).
        let mut lo = [0.0; MAX_SUPPORT];
        let mut hi = [0.0; MAX_SUPPORT];
        ShapeOrder::Qsp.weights(1.0 - 1e-9, &mut lo);
        ShapeOrder::Qsp.weights(0.0, &mut hi);
        assert!((lo[2] - hi[1]).abs() < 1e-7);
        assert!((lo[3] - hi[2]).abs() < 1e-7);
    }

    #[test]
    fn support_and_nodes() {
        assert_eq!(ShapeOrder::Cic.support(), 2);
        assert_eq!(ShapeOrder::Qsp.support(), 4);
        assert_eq!(ShapeOrder::Cic.nodes_3d(), 8);
        assert_eq!(ShapeOrder::Tsc.nodes_3d(), 27);
        assert_eq!(ShapeOrder::Qsp.nodes_3d(), 64);
    }

    #[test]
    fn from_order_roundtrip() {
        for o in ORDERS {
            assert_eq!(ShapeOrder::from_order(o.order()), o);
        }
    }

    #[test]
    fn canonical_flops_grow_with_order() {
        let cic = canonical_flops_per_particle(ShapeOrder::Cic);
        let qsp = canonical_flops_per_particle(ShapeOrder::Qsp);
        assert!(cic > 60.0 && cic < 120.0, "cic {cic}");
        assert!(qsp > 400.0 && qsp < 700.0, "qsp {qsp}");
        assert!(qsp > 4.0 * cic);
    }
}
