//! The canonical scalar deposition (ground truth) and the WarpX-style
//! direct-scatter baseline kernel.
//!
//! [`reference_deposit`] is the textbook equation-(1) loop, written in
//! plain Rust with no cost model. Every emulated kernel in this crate is
//! tested for numerical agreement with it.
//!
//! [`BaselineKernel`] models the unmodified WarpX kernel: a compiler
//! auto-vectorised loop over particles that scatters each particle's
//! `support^3` nodal contributions straight onto the global current
//! arrays. Lanes of one vector that target the same grid node serialise
//! (the atomic-conflict problem of Figure 2), and the scattered address
//! stream is priced by the cache model — which is exactly why adding the
//! incremental sorter speeds this kernel up (Table 1, `Baseline+IncrSort`)
//! even though it was designed without sorting in mind.

use mpic_grid::{Array3, GridGeometry};
use mpic_machine::{Lanes, Machine, Phase, VReg, VLANES};
use mpic_particles::{cell_runs, ParticleContainer};

use crate::common::{node_index, stage_particle, PrepStyle, Staging, TouchedNodes};
use crate::kernel::{DepositionKernel, TileCtx, TileOutput};
use crate::shape::{ShapeOrder, MAX_NODES_3D, MAX_SUPPORT};

/// Computes the exact current deposition of every live particle onto
/// guarded nodal arrays (x fastest). Pure reference; no cost model.
pub fn reference_deposit(
    geom: &GridGeometry,
    order: ShapeOrder,
    container: &ParticleContainer,
) -> (Array3, Array3, Array3) {
    let dims = geom.dims_with_guard();
    let mut jx = Array3::zeros(dims[0], dims[1], dims[2]);
    let mut jy = jx.clone();
    let mut jz = jx.clone();
    let s = order.support();
    for tile in &container.tiles {
        for p in tile.soa.live_indices() {
            let st = stage_particle(
                geom,
                order,
                container.charge,
                tile.soa.x[p],
                tile.soa.y[p],
                tile.soa.z[p],
                tile.soa.ux[p],
                tile.soa.uy[p],
                tile.soa.uz[p],
                tile.soa.w[p],
            );
            for c in 0..s {
                for b in 0..s {
                    for a in 0..s {
                        let w = st.sx[a] * st.sy[b] * st.sz[c];
                        let n = node_index(geom, &st, order, a, b, c);
                        jx.add(n[0], n[1], n[2], st.wq[0] * w);
                        jy.add(n[0], n[1], n[2], st.wq[1] * w);
                        jz.add(n[0], n[1], n[2], st.wq[2] * w);
                    }
                }
            }
        }
    }
    (jx, jy, jz)
}

/// The unmodified-WarpX baseline: auto-vectorised direct scatter.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineKernel;

impl DepositionKernel for BaselineKernel {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn prep_style(&self) -> PrepStyle {
        PrepStyle::Autovec
    }

    fn uses_rhocell(&self) -> bool {
        false
    }

    fn deposit_tile(&self, m: &mut Machine, ctx: &TileCtx, st: &Staging, out: &mut TileOutput) {
        let TileOutput::Grid {
            j_addr,
            jx,
            jy,
            jz,
            touched,
        } = out
        else {
            panic!("baseline kernel writes the grid directly");
        };
        if ctx.batched {
            deposit_tile_batched(m, ctx, st, *j_addr, jx, jy, jz, touched);
            return;
        }
        let s = ctx.order.support();
        let n = st.n;
        m.in_phase(Phase::Compute, |m| {
            m.use_autovec_model();
            let mut p0 = 0;
            while p0 < n {
                let lanes = (n - p0).min(VLANES);
                // Per-vector staged re-loads: cache-blocked staging, so
                // issue cost only.
                m.v_issue(3 * s + 3);
                for c in 0..s {
                    for b in 0..s {
                        for a in 0..s {
                            // Tensor shape product for the 8 lanes.
                            let sxa =
                                VReg::from_slice(&st.shape[0][a * n + p0..a * n + p0 + lanes]);
                            let syb =
                                VReg::from_slice(&st.shape[1][b * n + p0..b * n + p0 + lanes]);
                            let szc =
                                VReg::from_slice(&st.shape[2][c * n + p0..c * n + p0 + lanes]);
                            let sxy = m.v_mul(sxa, syb);
                            let w = m.v_mul(sxy, szc);
                            // Per-lane target node (address math).
                            m.v_ops(2);
                            let mut idx = [0usize; VLANES];
                            for (l, p) in (p0..p0 + lanes).enumerate() {
                                let pseudo = crate::common::Staged {
                                    cell: st.cell[p],
                                    wq: [0.0; 3],
                                    sx: [0.0; 4],
                                    sy: [0.0; 4],
                                    sz: [0.0; 4],
                                };
                                let g = node_index(ctx.geom, &pseudo, ctx.order, a, b, c);
                                idx[l] = jx.idx(g[0], g[1], g[2]);
                                touched.note(idx[l]);
                            }
                            for (comp, arr) in
                                [&mut **jx, &mut **jy, &mut **jz].into_iter().enumerate()
                            {
                                let wq = VReg::from_slice(&st.wq[comp][p0..p0 + lanes]);
                                let val = m.v_mul(w, wq);
                                m.v_scatter_add(
                                    j_addr[comp],
                                    &idx[..lanes],
                                    val,
                                    arr.as_mut_slice(),
                                );
                            }
                        }
                    }
                }
                p0 += lanes;
            }
            m.use_intrinsics_model();
        });
    }
}

/// The cell-run batched direct-scatter sweep: each same-cell particle
/// run accumulates its `support^3 x 3` nodal contributions into a
/// stack-resident stencil block (per-particle adds in particle order, so
/// within-run sums match the per-particle kernel bit for bit), and the
/// block is applied to the worker's accumulator **once per run** — the
/// node addresses are computed once and the scattered writes shrink by
/// roughly the run length. Cross-run contributions to a shared grid node
/// regroup the FP adds (run subtotals instead of interleaved particles),
/// which is the tight-ULP deviation the equivalence tests pin.
fn deposit_tile_batched(
    m: &mut Machine,
    ctx: &TileCtx,
    st: &Staging,
    j_addr: [mpic_machine::VAddr; 3],
    jx: &mut Array3,
    jy: &mut Array3,
    jz: &mut Array3,
    touched: &mut TouchedNodes,
) {
    let s = ctx.order.support();
    let nodes = ctx.order.nodes_3d();
    let n = st.n;
    m.in_phase(Phase::Compute, |m| {
        m.use_autovec_model();
        let mut idx = [0usize; MAX_NODES_3D];
        let mut block = [[0.0f64; MAX_NODES_3D]; 3];
        for run in cell_runs(&st.cell_local[..n]) {
            // Stencil node addresses once per run (shared by every
            // particle of the run and all three components).
            let pseudo = crate::common::Staged {
                cell: st.cell[run.start],
                wq: [0.0; 3],
                sx: [0.0; 4],
                sy: [0.0; 4],
                sz: [0.0; 4],
            };
            for c in 0..s {
                for b in 0..s {
                    for a in 0..s {
                        let g = node_index(ctx.geom, &pseudo, ctx.order, a, b, c);
                        idx[(c * s + b) * s + a] = jx.idx(g[0], g[1], g[2]);
                    }
                }
            }
            m.s_ops(3 * s + nodes); // Per-dim wraps + linear index math.
            for comp in block.iter_mut() {
                comp[..nodes].fill(0.0);
            }
            // Accumulate the run into the block in particle order; the
            // block is stack/L1-resident, so only arithmetic and issue
            // costs are charged — the memory the batching saves.
            if ctx.simd {
                accumulate_run_simd(m, st, s, nodes, run.start, run.end, &mut block);
            } else {
                let mut p0 = run.start;
                while p0 < run.end {
                    let lanes = (run.end - p0).min(VLANES);
                    m.v_issue(3 * s + 3); // Staged re-loads (cache-blocked).
                    for c in 0..s {
                        for b in 0..s {
                            for a in 0..s {
                                let nd = (c * s + b) * s + a;
                                m.v_ops(2); // Tensor shape product per chunk.
                                m.v_ops(3); // Effective-current multiplies.
                                m.v_issue(3); // Block accumulates (L1-resident).
                                for p in p0..p0 + lanes {
                                    let w = st.s(0, a, p) * st.s(1, b, p) * st.s(2, c, p);
                                    for comp in 0..3 {
                                        block[comp][nd] += w * st.wq[comp][p];
                                    }
                                }
                            }
                        }
                    }
                    p0 += lanes;
                }
            }
            // Apply the block to the accumulator once per run: the only
            // scattered grid traffic left, priced per distinct node with
            // no intra-vector conflicts (each node appears once).
            for (comp, arr) in [&mut *jx, &mut *jy, &mut *jz].into_iter().enumerate() {
                let dst = arr.as_mut_slice();
                let mut nd = 0;
                while nd < nodes {
                    let w = (nodes - nd).min(VLANES);
                    m.v_touch_scatter_add(j_addr[comp], &idx[nd..nd + w]);
                    for l in nd..nd + w {
                        if comp == 0 {
                            touched.note(idx[l]);
                        }
                        dst[idx[l]] += block[comp][l];
                    }
                    nd += w;
                }
            }
        }
        m.use_intrinsics_model();
    });
}

/// Lane-parallel accumulation of one same-cell run into the stencil
/// block ([`TileCtx::simd`]). Values are computed particle-outer with
/// node-chunked [`Lanes`] arithmetic: for every (component, node) pair
/// the adds still land in ascending particle order and the shape
/// product keeps the scalar path's `(sx*sy)*sz` association, so the
/// finished block is bit-identical to the scalar accumulation. The
/// charge stream mirrors the scalar chunk loop call for call, so every
/// Compute-phase counter is bitwise unchanged by the mode.
fn accumulate_run_simd(
    m: &mut Machine,
    st: &Staging,
    s: usize,
    nodes: usize,
    start: usize,
    end: usize,
    block: &mut [[f64; MAX_NODES_3D]; 3],
) {
    let mut p0 = start;
    while p0 < end {
        let lanes = (end - p0).min(VLANES);
        m.v_issue(3 * s + 3); // Staged re-loads (cache-blocked).
        for _nd in 0..nodes {
            m.v_ops(2); // Tensor shape product per chunk.
            m.v_ops(3); // Effective-current multiplies.
            m.v_issue(3); // Block accumulates (L1-resident).
        }
        for p in p0..p0 + lanes {
            // The s*s x-y products once per particle; folding sz in per
            // node keeps the (sx*sy)*sz association of the scalar loop.
            let mut sxy = [0.0; MAX_SUPPORT * MAX_SUPPORT];
            for b in 0..s {
                for a in 0..s {
                    sxy[b * s + a] = st.s(0, a, p) * st.s(1, b, p);
                }
            }
            let wq = [
                Lanes::splat(st.wq[0][p]),
                Lanes::splat(st.wq[1][p]),
                Lanes::splat(st.wq[2][p]),
            ];
            let mut node = 0;
            while node < nodes {
                let w = (nodes - node).min(VLANES);
                let mut w3 = [0.0; VLANES];
                for (l, v) in w3.iter_mut().enumerate().take(w) {
                    let nd = node + l;
                    *v = sxy[nd % (s * s)] * st.s(2, nd / (s * s), p);
                }
                let w3 = Lanes(w3);
                for comp in 0..3 {
                    Lanes::from_slice(&block[comp][node..node + w])
                        .mul_acc(w3, wq[comp])
                        .write_to(&mut block[comp][node..node + w], w);
                }
                node += w;
            }
        }
        p0 += lanes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::canonical_flops_per_particle;
    use mpic_grid::constants::C;
    use mpic_grid::TileLayout;
    use mpic_particles::Departure;

    fn setup(order: ShapeOrder) -> (GridGeometry, TileLayout, ParticleContainer) {
        let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [1.0e-6; 3], 2);
        let layout = TileLayout::new(&geom, [8, 8, 8]);
        let mut c = ParticleContainer::new(&layout, -1.0e-19, 9.1e-31);
        // A handful of moving particles spread over cells.
        for i in 0..20 {
            let f = i as f64 / 20.0;
            let _ = c.inject(
                &layout,
                &geom,
                Departure {
                    x: (0.1 + 7.0 * f) * 1e-6,
                    y: (7.9 - 7.0 * f) * 1e-6,
                    z: (0.3 + 3.0 * f) * 1e-6,
                    ux: 0.1 * (i as f64).sin(),
                    uy: 0.05,
                    uz: -0.2 * f,
                    w: 1e10,
                },
            );
        }
        let _ = order;
        (geom, layout, c)
    }

    #[test]
    fn reference_conserves_charge_current() {
        // Total deposited Jx equals sum of q*w*vx / V (shape sums to 1).
        let (geom, _, c) = setup(ShapeOrder::Cic);
        let (jx, _, _) = reference_deposit(&geom, ShapeOrder::Cic, &c);
        let mut expect = 0.0;
        for t in &c.tiles {
            for p in t.soa.live_indices() {
                let (vx, _, _) =
                    crate::common::velocity_from_u(t.soa.ux[p], t.soa.uy[p], t.soa.uz[p]);
                expect += c.charge * t.soa.w[p] * vx / geom.cell_volume();
            }
        }
        assert!(
            ((jx.sum() - expect) / expect.abs().max(1e-300)).abs() < 1e-12,
            "sum {} vs {}",
            jx.sum(),
            expect
        );
    }

    #[test]
    fn reference_qsp_matches_cic_totals() {
        // Different orders distribute differently but total current is
        // identical.
        let (geom, _, c) = setup(ShapeOrder::Cic);
        let (j1, _, _) = reference_deposit(&geom, ShapeOrder::Cic, &c);
        let (j3, _, _) = reference_deposit(&geom, ShapeOrder::Qsp, &c);
        assert!((j1.sum() - j3.sum()).abs() <= 1e-12 * j1.sum().abs().max(1e-300));
    }

    #[test]
    fn reference_at_rest_deposits_nothing() {
        let geom = GridGeometry::new([4, 4, 4], [0.0; 3], [1.0; 3], 1);
        let layout = TileLayout::new(&geom, [4, 4, 4]);
        let mut c = ParticleContainer::new(&layout, -1.0, 1.0);
        let _ = c.inject(
            &layout,
            &geom,
            Departure {
                x: 1.5,
                y: 1.5,
                z: 1.5,
                ux: 0.0,
                uy: 0.0,
                uz: 0.0,
                w: 1.0,
            },
        );
        let (jx, jy, jz) = reference_deposit(&geom, ShapeOrder::Cic, &c);
        assert_eq!(jx.sum(), 0.0);
        assert_eq!(jy.sum(), 0.0);
        assert_eq!(jz.sum(), 0.0);
    }

    #[test]
    fn reference_single_particle_cic_weights() {
        let geom = GridGeometry::new([4, 4, 4], [0.0; 3], [1.0; 3], 1);
        let layout = TileLayout::new(&geom, [4, 4, 4]);
        let mut c = ParticleContainer::new(&layout, 2.0, 1.0);
        // Particle at the exact corner of cell (1,1,1): all weight on one
        // node. ux=1 => vx = c/sqrt(2).
        let _ = c.inject(
            &layout,
            &geom,
            Departure {
                x: 1.0,
                y: 1.0,
                z: 1.0,
                ux: 1.0,
                uy: 0.0,
                uz: 0.0,
                w: 3.0,
            },
        );
        let (jx, _, _) = reference_deposit(&geom, ShapeOrder::Cic, &c);
        let vx = C / 2.0_f64.sqrt();
        let expect = 2.0 * 3.0 * vx / 1.0;
        assert!((jx.get(2, 2, 2) - expect).abs() < 1e-9 * expect);
        assert!((jx.sum() - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn canonical_flops_sane_for_counting() {
        assert!(canonical_flops_per_particle(ShapeOrder::Qsp) > 500.0);
    }
}
