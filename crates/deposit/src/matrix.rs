//! The MatrixPIC hybrid VPU-MPU deposition kernel (paper section 4.2).
//!
//! # CIC mapping (section 4.2.1, Figure 5 left)
//!
//! For a particle pair `(p1, p2)` and one current component, the VPU
//! assembles
//!
//! * `A = [wq1*sx0(p1), wq1*sx1(p1), wq2*sx0(p2), wq2*sx1(p2)]` and
//! * `B = [syz00, syz10, syz01, syz11 | same for p2]`
//!   where `syz_bc = sy_b * sz_c`,
//!
//! and a single MOPA computes `A (x) B`: the top-left 2x4 block is p1's 8
//! nodal contributions, the bottom-right 2x4 block is p2's; the
//! cross-term blocks are ignored at extraction. 16 of the 64 tile slots
//! are useful — the 25% utilisation the paper quotes for CIC.
//!
//! # QSP mapping
//!
//! The third-order tensor product `wq*sx (x) sy (x) sz` is computed as
//! four z-slab MOPAs per pair: slab `c` uses
//! `A_c = [wq1*sz1[c]*sx0..3(p1) | wq2*sz2[c]*sx0..3(p2)]` against
//! `B = [sy0..3(p1) | sy0..3(p2)]`, so each MOPA carries 2 x 16 = 32
//! useful slots of 64 — the 50% utilisation the paper quotes for QSP.
//!
//! # Cell residency
//!
//! Particles are processed in runs of equal cell (the GPMA-sorted order
//! guarantees long runs). Tile registers accumulate across all pairs of a
//! run and are extracted to the rhocell once per run, which is the
//! data-movement saving the paper attributes to sorting; with unsorted
//! input the runs degenerate to length ~1 and the kernel pays a zero +
//! extraction per pair — reproducing the `Hybrid-noSort` degradation of
//! the ablation study (Figure 10).

use mpic_machine::{Machine, Phase, TileId, VReg};
use mpic_particles::cell_runs;

use crate::common::{PrepStyle, Staging};
use crate::kernel::{DepositionKernel, TileCtx, TileOutput};
use crate::rhocell::Rhocell;
use crate::shape::ShapeOrder;

/// The hybrid VPU-MPU deposition kernel.
#[derive(Debug, Clone, Copy)]
pub struct MatrixKernel {
    /// Preprocessing style: `VpuIntrinsics` for the full hybrid pipeline,
    /// `Scalar` for the `Matrix-only` ablation configuration.
    pub prep: PrepStyle,
}

impl MatrixKernel {
    /// The full hybrid configuration (`FullOpt` when paired with
    /// incremental sorting).
    pub fn hybrid() -> Self {
        Self {
            prep: PrepStyle::VpuIntrinsics,
        }
    }

    /// The `Matrix-only` ablation: MPU compute with scalar staging.
    pub fn matrix_only() -> Self {
        Self {
            prep: PrepStyle::Scalar,
        }
    }
}

/// Tiles used per current component (Jx, Jy, Jz).
const COMP_TILE: [TileId; 3] = [TileId(0), TileId(1), TileId(2)];

impl DepositionKernel for MatrixKernel {
    fn name(&self) -> &'static str {
        match self.prep {
            PrepStyle::Scalar => "matrix_only",
            _ => "matrixpic",
        }
    }

    fn prep_style(&self) -> PrepStyle {
        self.prep
    }

    fn uses_rhocell(&self) -> bool {
        true
    }

    fn deposit_tile(&self, m: &mut Machine, ctx: &TileCtx, st: &Staging, out: &mut TileOutput) {
        let TileOutput::Rho { rho_addr, rho } = out else {
            panic!("matrix kernel requires a rhocell output");
        };
        m.in_phase(Phase::Compute, |m| {
            // Process maximal runs of identical cell id via the shared
            // run iterator (sorted input => one run per occupied cell;
            // unsorted input => short runs). MPU tile registers stay
            // resident across a run and are extracted once per run — the
            // kernel was run-batched by design; `cell_runs` makes its
            // run boundaries the same ones the rest of the batched hot
            // path uses.
            for run in cell_runs(&st.cell_local[..st.n]) {
                match ctx.order {
                    ShapeOrder::Cic => {
                        deposit_run_cic(m, ctx, st, run.start, run.end, run.cell, *rho_addr, rho);
                    }
                    ShapeOrder::Qsp => {
                        deposit_run_qsp(m, ctx, st, run.start, run.end, run.cell, *rho_addr, rho);
                    }
                    ShapeOrder::Tsc => {
                        deposit_run_tsc(m, ctx, st, run.start, run.end, run.cell, *rho_addr, rho);
                    }
                }
            }
        });
    }
}

/// CIC: one MOPA per pair per component; tile resident across the run.
fn deposit_run_cic(
    m: &mut Machine,
    ctx: &TileCtx,
    st: &Staging,
    run_start: usize,
    run_end: usize,
    cell: usize,
    rho_addr: mpic_machine::VAddr,
    rho: &mut Rhocell,
) {
    for comp in 0..3 {
        m.t_zero(COMP_TILE[comp]);
    }
    let mut p = run_start;
    while p < run_end {
        let pair: [Option<usize>; 2] = [Some(p), (p + 1 < run_end).then_some(p + 1)];
        // Staged loads for the pair (cache-blocked => issue only).
        m.v_issue(2);

        // B = [sy0sz0, sy1sz0, sy0sz1, sy1sz1 | p2...] : one multiply of
        // a shuffled sy vector by a shuffled sz vector.
        let mut sy8 = [0.0; 8];
        let mut sz8 = [0.0; 8];
        for (half, part) in pair.iter().enumerate() {
            if let Some(q) = part {
                for c in 0..2 {
                    for b in 0..2 {
                        sy8[half * 4 + c * 2 + b] = st.s(1, b, *q);
                        sz8[half * 4 + c * 2 + b] = st.s(2, c, *q);
                    }
                }
            }
        }
        m.v_ops(2); // The two shuffles.
        let b_vec = m.v_mul(VReg(sy8), VReg(sz8));

        for comp in 0..3 {
            // A = [wq*sx0, wq*sx1 | p2...] (lanes 4.. stay zero for a
            // solo trailing particle).
            let mut sx4 = [0.0; 8];
            let mut wq4 = [0.0; 8];
            for (half, part) in pair.iter().enumerate() {
                if let Some(q) = part {
                    sx4[half * 2] = st.s(0, 0, *q);
                    sx4[half * 2 + 1] = st.s(0, 1, *q);
                    wq4[half * 2] = st.wq[comp][*q];
                    wq4[half * 2 + 1] = st.wq[comp][*q];
                }
            }
            m.v_ops(1); // Broadcast/interleave of wq.
            let a_vec = m.v_mul(VReg(sx4), VReg(wq4));
            m.t_mopa(COMP_TILE[comp], a_vec, b_vec);
        }
        p += 2;
    }
    // Extraction once per run: p1 block = rows 0-1 x cols 0-3, p2 block =
    // rows 2-3 x cols 4-7; node id = (c*2 + b)*2 + a = col*2 + row.
    for comp in 0..3 {
        let mut rows = [VReg::zero(); 4];
        for (r, row) in rows.iter_mut().enumerate() {
            *row = m.t_read_row(COMP_TILE[comp], r);
        }
        let mut vals = [0.0; 8];
        for col in 0..4 {
            for row in 0..2 {
                vals[col * 2 + row] = rows[row].lane(col) + rows[2 + row].lane(4 + col);
            }
        }
        m.v_ops(2); // Block add + interleave shuffle.
        let contrib = VReg(vals);
        let base = rho.index(comp, cell, 0);
        let addr = rho_addr.offset_f64(base);
        // Rhocell accumulate: sorted runs visit consecutive cells, so
        // these slices form an ascending dense sweep — the lane-parallel
        // mode prices it as a stream instead of walking the cache.
        let cur = if ctx.simd {
            m.v_load_streamed(addr, rho.cell_slice(comp, cell), rho.footprint_bytes())
        } else {
            m.v_load(addr, rho.cell_slice(comp, cell))
        };
        let sum = m.v_add(cur, contrib);
        let fp = rho.footprint_bytes();
        let slice = rho.cell_slice_mut(comp, cell);
        if ctx.simd {
            m.v_store_streamed(addr, sum, slice, 8, fp);
        } else {
            m.v_store(addr, sum, slice, 8);
        }
    }
}

/// QSP: four z-slab MOPAs per pair per component; tiles resident across
/// the run for one component at a time.
fn deposit_run_qsp(
    m: &mut Machine,
    ctx: &TileCtx,
    st: &Staging,
    run_start: usize,
    run_end: usize,
    cell: usize,
    rho_addr: mpic_machine::VAddr,
    rho: &mut Rhocell,
) {
    // One component at a time so the four z-slab tiles fit in the
    // architectural tile registers (TileId 0..3).
    for comp in 0..3 {
        for c in 0..4 {
            m.t_zero(TileId(c));
        }
        let mut p = run_start;
        while p < run_end {
            let pair: [Option<usize>; 2] = [Some(p), (p + 1 < run_end).then_some(p + 1)];
            m.v_issue(2);

            // B = [sy0..3(p1) | sy0..3(p2)] — pure staged data.
            let mut by = [0.0; 8];
            for (half, part) in pair.iter().enumerate() {
                if let Some(q) = part {
                    for b in 0..4 {
                        by[half * 4 + b] = st.s(1, b, *q);
                    }
                }
            }
            m.v_ops(1);
            let b_vec = VReg(by);

            for c in 0..4 {
                // A_c = [wq*sz[c]*sx0..3(p1) | same p2].
                let mut ax = [0.0; 8];
                let mut scale = [0.0; 8];
                for (half, part) in pair.iter().enumerate() {
                    if let Some(q) = part {
                        let f = st.wq[comp][*q] * st.s(2, c, *q);
                        for a in 0..4 {
                            ax[half * 4 + a] = st.s(0, a, *q);
                            scale[half * 4 + a] = f;
                        }
                    }
                }
                m.v_ops(1); // wq*sz broadcast.
                let a_vec = m.v_mul(VReg(ax), VReg(scale));
                m.t_mopa(TileId(c), a_vec, b_vec);
            }
            p += 2;
        }
        // Extraction once per run per component: slab tile `c` holds, for
        // each particle half, the 4x4 block sx (x) sy scaled by wq*sz[c];
        // node id = (c*4 + b)*4 + a.
        for c in 0..4 {
            let mut block = [[0.0; 8]; 8];
            for (r, row) in block.iter_mut().enumerate().take(8) {
                let reg = m.t_read_row(TileId(c), r);
                for (col, v) in row.iter_mut().enumerate() {
                    *v = reg.lane(col);
                }
            }
            // Two 8-wide accumulate passes cover the 16 nodes of slab c.
            for half_b in 0..2 {
                let node0 = (c * 4 + half_b * 2) * 4;
                let mut vals = [0.0; 8];
                for b in 0..2 {
                    for a in 0..4 {
                        // p1 block rows 0-3 cols 0-3; p2 rows 4-7 cols 4-7.
                        vals[b * 4 + a] =
                            block[a][half_b * 2 + b] + block[4 + a][4 + half_b * 2 + b];
                    }
                }
                m.v_ops(2);
                let contrib = VReg(vals);
                let base = rho.index(comp, cell, node0);
                let addr = rho_addr.offset_f64(base);
                // Streamed under SIMD, as in the CIC extraction.
                let cur = if ctx.simd {
                    m.v_load_streamed(
                        addr,
                        &rho.cell_slice(comp, cell)[node0..node0 + 8],
                        rho.footprint_bytes(),
                    )
                } else {
                    m.v_load(addr, &rho.cell_slice(comp, cell)[node0..node0 + 8])
                };
                let sum = m.v_add(cur, contrib);
                let fp = rho.footprint_bytes();
                let slice = rho.cell_slice_mut(comp, cell);
                if ctx.simd {
                    m.v_store_streamed(addr, sum, &mut slice[node0..node0 + 8], 8, fp);
                } else {
                    m.v_store(addr, sum, &mut slice[node0..node0 + 8], 8);
                }
            }
        }
    }
}

/// TSC (order 2): handled with the QSP machinery over a 3-wide support —
/// three z-slab MOPAs per pair per component at 2x9/64 = 28% utilisation.
fn deposit_run_tsc(
    m: &mut Machine,
    ctx: &TileCtx,
    st: &Staging,
    run_start: usize,
    run_end: usize,
    cell: usize,
    rho_addr: mpic_machine::VAddr,
    rho: &mut Rhocell,
) {
    for comp in 0..3 {
        for c in 0..3 {
            m.t_zero(TileId(c));
        }
        let mut p = run_start;
        while p < run_end {
            let pair: [Option<usize>; 2] = [Some(p), (p + 1 < run_end).then_some(p + 1)];
            m.v_issue(2);
            let mut by = [0.0; 8];
            for (half, part) in pair.iter().enumerate() {
                if let Some(q) = part {
                    for b in 0..3 {
                        by[half * 4 + b] = st.s(1, b, *q);
                    }
                }
            }
            m.v_ops(1);
            let b_vec = VReg(by);
            for c in 0..3 {
                let mut ax = [0.0; 8];
                let mut scale = [0.0; 8];
                for (half, part) in pair.iter().enumerate() {
                    if let Some(q) = part {
                        let f = st.wq[comp][*q] * st.s(2, c, *q);
                        for a in 0..3 {
                            ax[half * 4 + a] = st.s(0, a, *q);
                            scale[half * 4 + a] = f;
                        }
                    }
                }
                m.v_ops(1);
                let a_vec = m.v_mul(VReg(ax), VReg(scale));
                m.t_mopa(TileId(c), a_vec, b_vec);
            }
            p += 2;
        }
        for c in 0..3 {
            let mut block = [[0.0; 8]; 8];
            for (r, row) in block.iter_mut().enumerate().take(8) {
                let reg = m.t_read_row(TileId(c), r);
                for (col, v) in row.iter_mut().enumerate() {
                    *v = reg.lane(col);
                }
            }
            for b in 0..3 {
                let node0 = (c * 3 + b) * 3;
                let mut vals = [0.0; 8];
                for a in 0..3 {
                    vals[a] = block[a][b] + block[4 + a][4 + b];
                }
                m.v_ops(2);
                let contrib = VReg(vals);
                let base = rho.index(comp, cell, node0);
                let addr = rho_addr.offset_f64(base);
                // Streamed under SIMD, as in the CIC extraction.
                let cur = if ctx.simd {
                    m.v_load_streamed(
                        addr,
                        &rho.cell_slice(comp, cell)[node0..node0 + 3],
                        rho.footprint_bytes(),
                    )
                } else {
                    m.v_load(addr, &rho.cell_slice(comp, cell)[node0..node0 + 3])
                };
                let sum = m.v_add(cur, contrib);
                let fp = rho.footprint_bytes();
                let slice = rho.cell_slice_mut(comp, cell);
                if ctx.simd {
                    m.v_store_streamed(addr, sum, &mut slice[node0..node0 + 3], 3, fp);
                } else {
                    m.v_store(addr, sum, &mut slice[node0..node0 + 3], 3);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_names() {
        assert_eq!(MatrixKernel::hybrid().name(), "matrixpic");
        assert_eq!(MatrixKernel::matrix_only().name(), "matrix_only");
        assert!(MatrixKernel::hybrid().uses_rhocell());
    }
}
