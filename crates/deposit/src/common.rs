//! Shared helpers for all deposition kernels: relativistic velocity
//! recovery, per-particle staging records and the virtual-address map
//! that lets kernels present realistic address streams to the cache
//! model.

use mpic_grid::constants::C;
use mpic_grid::{Array3, GridGeometry};
use mpic_machine::{Machine, VAddr};

use crate::shape::{ShapeOrder, MAX_SUPPORT};

/// Recovers velocity (m/s) from normalised momentum u = gamma v / c.
#[inline]
pub fn velocity_from_u(ux: f64, uy: f64, uz: f64) -> (f64, f64, f64) {
    let gamma = (1.0 + ux * ux + uy * uy + uz * uz).sqrt();
    let f = C / gamma;
    (ux * f, uy * f, uz * f)
}

/// Staged per-particle deposition data — the output of the paper's VPU
/// preprocessing stage (Algorithm 2 Stage 1), stored in temporary arrays
/// before the compute stage consumes it.
#[derive(Debug, Clone, Copy)]
pub struct Staged {
    /// Wrapped physical cell index.
    pub cell: [usize; 3],
    /// Effective current terms `q * v * W / V_cell` per component.
    pub wq: [f64; 3],
    /// 1-D shape weights per dimension.
    pub sx: [f64; MAX_SUPPORT],
    /// 1-D shape weights per dimension.
    pub sy: [f64; MAX_SUPPORT],
    /// 1-D shape weights per dimension.
    pub sz: [f64; MAX_SUPPORT],
}

/// Computes the staged record for one particle (no cost charging; the
/// emulated kernels charge their own instruction streams and use this
/// only for the functional values).
#[inline]
pub fn stage_particle(
    geom: &GridGeometry,
    order: ShapeOrder,
    charge: f64,
    x: f64,
    y: f64,
    z: f64,
    ux: f64,
    uy: f64,
    uz: f64,
    w: f64,
) -> Staged {
    let (cell, frac) = geom.locate(x, y, z);
    let cell = geom.wrap_cell(cell);
    let (vx, vy, vz) = velocity_from_u(ux, uy, uz);
    let qw = charge * w / geom.cell_volume();
    let mut sx = [0.0; MAX_SUPPORT];
    let mut sy = [0.0; MAX_SUPPORT];
    let mut sz = [0.0; MAX_SUPPORT];
    order.weights(frac[0], &mut sx);
    order.weights(frac[1], &mut sy);
    order.weights(frac[2], &mut sz);
    Staged {
        cell,
        wq: [qw * vx, qw * vy, qw * vz],
        sx,
        sy,
        sz,
    }
}

/// Wrapped, guarded node coordinate along axis `d` for support offset
/// `a` of a particle in physical cell `cell_d`.
///
/// The single source of truth for the periodic node wrap: both the
/// deposit side ([`node_index`]) and the gather side
/// (`mpic_push::gather_fields`) must target the same grid nodes, so
/// both derive their coordinates from this helper.
#[inline]
pub fn node_coord(
    geom: &GridGeometry,
    order: ShapeOrder,
    d: usize,
    cell_d: usize,
    a: usize,
) -> usize {
    let n = geom.n_cells[d] as i64;
    let mut v = cell_d as i64 + order.start_offset() + a as i64;
    // In-bounds cells land at most one period outside [0, n): a
    // conditional add/sub replaces the `rem_euclid` division on the hot
    // path (this runs per stencil node per particle), with the division
    // kept as the fallback for out-of-range callers.
    if v < 0 {
        v += n;
    } else if v >= n {
        v -= n;
    }
    if !(0..n).contains(&v) {
        v = v.rem_euclid(n);
    }
    v as usize + geom.guard
}

/// Node index (wrapped periodically) for support offsets `(a, b, c)` of a
/// staged particle, in guarded array coordinates.
#[inline]
pub fn node_index(
    geom: &GridGeometry,
    staged: &Staged,
    order: ShapeOrder,
    a: usize,
    b: usize,
    c: usize,
) -> [usize; 3] {
    [
        node_coord(geom, order, 0, staged.cell[0], a),
        node_coord(geom, order, 1, staged.cell[1], b),
        node_coord(geom, order, 2, staged.cell[2], c),
    ]
}

/// Virtual base addresses of the structures a deposition step touches,
/// registered once so the cache simulation sees stable, realistic
/// addresses across timesteps.
#[derive(Debug, Clone)]
pub struct AddrMap {
    /// Global current arrays.
    pub jx: VAddr,
    /// Global current arrays.
    pub jy: VAddr,
    /// Global current arrays.
    pub jz: VAddr,
    /// Per-tile SoA attribute bases `[x, y, z, ux, uy, uz, w]`.
    pub soa: Vec<[VAddr; 7]>,
    /// Per-tile GPMA `local_index` base.
    pub local_index: Vec<VAddr>,
    /// Per-tile rhocell base (all three components, contiguous).
    pub rhocell: Vec<VAddr>,
    /// Staging scratch (shape factors, weights) shared across tiles.
    pub staging: VAddr,
}

impl AddrMap {
    /// Allocates the address map.
    ///
    /// `grid_len` is the guarded length of each J array; `tile_particle
    /// capacity` entries reserve SoA/GPMA space per tile (over-allocated
    /// 2x so address streams stay disjoint as tiles grow);
    /// `rhocell_len` is the per-tile rhocell footprint in f64 elements.
    pub fn new(
        m: &mut Machine,
        grid_len: usize,
        tile_capacities: &[usize],
        rhocell_len: usize,
    ) -> Self {
        let jx = m.mem().alloc_f64(grid_len);
        let jy = m.mem().alloc_f64(grid_len);
        let jz = m.mem().alloc_f64(grid_len);
        let mut soa = Vec::with_capacity(tile_capacities.len());
        let mut local_index = Vec::with_capacity(tile_capacities.len());
        let mut rhocell = Vec::with_capacity(tile_capacities.len());
        for &cap in tile_capacities {
            let reserve = (cap * 2).max(64);
            let mut attrs = [VAddr(0); 7];
            for a in &mut attrs {
                *a = m.mem().alloc_f64(reserve);
            }
            soa.push(attrs);
            local_index.push(m.mem().alloc_f64(reserve * 2));
            rhocell.push(m.mem().alloc_f64(rhocell_len));
        }
        // Staging holds up to ~20 term-major arrays of the largest tile
        // (QSP: 3 wq + 12 shape terms + indices), with the 2x reserve.
        let max_cap = tile_capacities.iter().copied().max().unwrap_or(64);
        let staging = m.mem().alloc_f64(20 * (max_cap * 2).max(64));
        Self {
            jx,
            jy,
            jz,
            soa,
            local_index,
            rhocell,
            staging,
        }
    }
}

/// How the preprocessing stage is executed by a kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrepStyle {
    /// Scalar loop (the `Matrix-only` ablation, isolating raw MPU power).
    Scalar,
    /// Compiler auto-vectorised loop (baseline and plain rhocell configs).
    Autovec,
    /// Hand-tuned VPU intrinsics (the hybrid pipeline of Algorithm 2).
    VpuIntrinsics,
}

/// Staged per-tile deposition data in term-major SoA layout — the
/// "temporary 1-D arrays" Algorithm 2 Stage 1 produces.
///
/// Instances are pooled per worker (see [`TileScratch`]) and recycled
/// tile after tile via [`Staging::reset`], so the step loop performs no
/// heap allocation once the buffers have grown to the largest tile.
#[derive(Debug, Clone, Default)]
pub struct Staging {
    /// Number of staged particles.
    pub n: usize,
    /// Shape support the buffers are currently laid out for.
    support: usize,
    /// Tile-local cell id per staged particle (GPMA bin); drives the
    /// cell-grouped MPU sweep and the rhocell target.
    pub cell_local: Vec<usize>,
    /// Wrapped physical cell per staged particle.
    pub cell: Vec<[usize; 3]>,
    /// Effective current terms per component, `wq[c][p]`.
    pub wq: [Vec<f64>; 3],
    /// Shape terms per dimension, term-major: `shape[d][a * n + p]`.
    pub shape: [Vec<f64>; 3],
}

impl Staging {
    /// Resizes (reusing capacity) and zeroes the buffers for a tile of
    /// `n` particles at shape support `support`. Every buffer is sized
    /// exactly, so stale data from a previously staged tile can never
    /// alias into the new layout.
    pub fn reset(&mut self, n: usize, support: usize) {
        self.n = n;
        self.support = support;
        self.cell_local.clear();
        self.cell_local.resize(n, 0);
        self.cell.clear();
        self.cell.resize(n, [0; 3]);
        for c in &mut self.wq {
            c.clear();
            c.resize(n, 0.0);
        }
        for d in &mut self.shape {
            d.clear();
            d.resize(support * n, 0.0);
        }
    }

    /// Shape support the staging buffers are laid out for.
    pub fn support(&self) -> usize {
        self.support
    }

    /// Shape term `a` of dimension `d` for staged particle `p`.
    ///
    /// The flat `shape` buffers are term-major (`a * n + p`); with pooled
    /// buffers an out-of-range `a` or `p` could silently read another
    /// term's data instead of panicking, so the layout coordinates are
    /// debug-asserted here.
    #[inline]
    pub fn s(&self, d: usize, a: usize, p: usize) -> f64 {
        debug_assert!(d < 3, "shape dimension {d} out of range");
        debug_assert!(
            a < self.support,
            "shape term {a} out of support {}",
            self.support
        );
        debug_assert!(p < self.n, "staged particle {p} out of {}", self.n);
        self.shape[d][a * self.n + p]
    }
}

/// First-touch-order tracker of grid nodes written by a direct-scatter
/// kernel, so a tile's dense private accumulator can be converted to a
/// sparse per-tile output (and re-zeroed) without scanning the whole
/// grid. The recorded order is a pure function of the tile's particle
/// stream — the determinism anchor of the sharded direct-scatter path.
#[derive(Debug, Clone, Default)]
pub struct TouchedNodes {
    /// Per-node generation stamp (`== gen` means already recorded).
    stamp: Vec<u32>,
    gen: u32,
    /// Distinct linear node indices in first-touch order.
    pub idx: Vec<usize>,
}

impl TouchedNodes {
    /// Prepares for a new tile over a grid of `len` nodes: clears the
    /// recorded indices and invalidates all stamps in O(1) (amortised; a
    /// generation wrap or resize pays one O(len) refill).
    pub fn reset(&mut self, len: usize) {
        if self.stamp.len() != len || self.gen == u32::MAX {
            self.stamp.clear();
            self.stamp.resize(len, 0);
            self.gen = 0;
        }
        self.gen += 1;
        self.idx.clear();
    }

    /// Records node `i` if this is its first touch since the last reset.
    #[inline]
    pub fn note(&mut self, i: usize) {
        if self.stamp[i] != self.gen {
            self.stamp[i] = self.gen;
            self.idx.push(i);
        }
    }
}

/// One tile's direct-scatter output in sparse form: the grid nodes it
/// touched (first-touch order) and the accumulated current values per
/// component. Produced by workers in parallel, applied to the global
/// grid sequentially in tile order — the direct-scatter analogue of the
/// rhocell apply pass.
#[derive(Debug, Clone, Default)]
pub struct TileCurrents {
    /// Linear grid indices, parallel to each `j` component vector.
    pub idx: Vec<usize>,
    /// Accumulated per-node current values, `j[comp][k]` for `idx[k]`.
    pub j: [Vec<f64>; 3],
}

impl TileCurrents {
    /// Empties the output, keeping capacity for reuse.
    pub fn clear(&mut self) {
        self.idx.clear();
        for c in &mut self.j {
            c.clear();
        }
    }

    /// Adds the recorded contributions onto the guarded grid arrays, in
    /// first-touch node order per component.
    pub fn apply_to_grid(&self, jx: &mut Array3, jy: &mut Array3, jz: &mut Array3) {
        for (comp, arr) in [jx, jy, jz].into_iter().enumerate() {
            let dst = arr.as_mut_slice();
            for (&i, &v) in self.idx.iter().zip(&self.j[comp]) {
                dst[i] += v;
            }
        }
    }
}

/// Per-worker pool of reusable tile-processing buffers: the staging
/// arrays plus the sorted-iteration index buffer, and — for
/// direct-scatter kernels — a private dense current accumulator with its
/// touched-node tracker. One instance per parallel worker keeps the
/// deposit hot path allocation-free without any cross-worker
/// synchronisation.
#[derive(Debug, Clone, Default)]
pub struct TileScratch {
    /// Staged per-particle data, recycled across tiles.
    pub staging: Staging,
    /// Iteration order (GPMA-sorted or live-slot) for the current tile.
    pub iteration: Vec<usize>,
    /// Dense per-worker `[jx, jy, jz]` accumulators for direct-scatter
    /// kernels, allocated lazily to the guarded grid shape.
    pub accum: Option<[Array3; 3]>,
    /// Tracker of which accumulator nodes the current tile wrote.
    pub touched: TouchedNodes,
}

/// Runs the preprocessing stage for one tile: loads particle data in the
/// given iteration order, computes cell indices, shape factors and
/// effective currents, and stores them into `st` (a pooled [`Staging`],
/// reset and refilled in place — no allocation once warm).
///
/// `iteration` lists SoA indices in processing order (GPMA-sorted or
/// raw); contiguous chunks are charged as unit-stride vector loads while
/// scattered chunks are charged as gathers, so the locality benefit of
/// sorting is priced from the actual index stream.
///
/// With `simd` set (the lane-parallel mode, see `SimConfig::simd`), the
/// vectorised staging branches price their attribute loads by the
/// state-free streaming model instead of walking the cache simulator:
/// seven parallel unit-stride SoA streams are exactly what the
/// prefetcher services at bandwidth, and the pure-function charge keeps
/// the mode bit-reproducible from the tile data alone. The scalar
/// staging style ignores the flag (a scalar loop has no lanes to
/// stream).
///
/// Charged to [`Phase::Preprocess`].
pub fn stage_tile(
    m: &mut Machine,
    geom: &GridGeometry,
    tile: &mpic_grid::Tile,
    order: ShapeOrder,
    charge: f64,
    soa: &mpic_particles::ParticleSoA,
    iteration: &[usize],
    soa_addr: &[VAddr; 7],
    staging_addr: VAddr,
    prep: PrepStyle,
    simd: bool,
    st: &mut Staging,
) {
    let _ = staging_addr; // Retained for future cache-priced staging.
    use mpic_machine::Phase;
    let n = iteration.len();
    let support = order.support();
    st.reset(n, support);

    // Functional fill.
    for (p, &i) in iteration.iter().enumerate() {
        let s = stage_particle(
            geom, order, charge, soa.x[i], soa.y[i], soa.z[i], soa.ux[i], soa.uy[i], soa.uz[i],
            soa.w[i],
        );
        st.cell[p] = s.cell;
        st.cell_local[p] = tile.local_cell_id(s.cell);
        for c in 0..3 {
            st.wq[c][p] = s.wq[c];
        }
        for a in 0..support {
            st.shape[0][a * n + p] = s.sx[a];
            st.shape[1][a * n + p] = s.sy[a];
            st.shape[2][a * n + p] = s.sz[a];
        }
    }

    // Cost model: charge the instruction stream of the staging loop.
    m.in_phase(Phase::Preprocess, |m| {
        match prep {
            PrepStyle::Scalar => {
                // Scalar loop: ~10 loads/stores + arithmetic per particle.
                let arith = 13 + 6 + 3 * order.weights_flops() + 8;
                for &i in iteration {
                    for a in soa_addr {
                        m.s_load(a.offset_f64(i), 8);
                    }
                    m.s_ops(arith);
                    // Cache-blocked staging stores: issue cost only.
                    m.s_ops(12);
                }
            }
            PrepStyle::Autovec | PrepStyle::VpuIntrinsics => {
                if prep == PrepStyle::Autovec {
                    m.use_autovec_model();
                }
                let mut p = 0;
                // Roofline footprint of one SoA attribute array: the
                // whole tile's particles are swept, so that is the
                // operand span the crossover tests against L1.
                let soa_footprint = (soa.x.len() * 8) as u64;
                while p < n {
                    let lanes = (n - p).min(mpic_machine::VLANES);
                    let chunk = &iteration[p..p + lanes];
                    let contiguous = chunk.windows(2).all(|w| w[1] == w[0] + 1);
                    // 7 attribute loads: unit-stride when the iteration
                    // order is compacted, gathers when GPMA-indexed. The
                    // lane-parallel mode prices both shapes by the
                    // state-free streaming model.
                    for a in soa_addr {
                        match (contiguous, simd) {
                            (true, false) => m.v_touch_load(a.offset_f64(chunk[0]), lanes),
                            (true, true) => m.v_touch_load_streamed(
                                a.offset_f64(chunk[0]),
                                lanes,
                                soa_footprint,
                            ),
                            (false, false) => m.v_touch_gather(*a, chunk),
                            (false, true) => m.v_touch_gather_streamed(*a, chunk, soa_footprint),
                        }
                    }
                    // Arithmetic: gamma+velocity (6), locate (6), weights
                    // (per dim), effective currents (4), index math (3).
                    let weight_ops = (3 * order.weights_flops()).div_ceil(2);
                    // gamma+velocity (6), locate (6), weights, effective
                    // currents (4), index/mask packing (10).
                    m.v_ops(6 + 6 + weight_ops + 4 + 10);
                    // Stores: 3 wq + 3*support shape terms + cell ids.
                    // Staging is processed in cache-blocked chunks, so
                    // only the store issue cost is charged (the blocks
                    // stay L1/L2 resident by construction).
                    m.v_issue(3 + 3 * support + 1);
                    p += lanes;
                }
                m.use_intrinsics_model();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpic_machine::MachineConfig;

    fn geom() -> GridGeometry {
        GridGeometry::new([8, 8, 8], [0.0; 3], [1.0e-6; 3], 2)
    }

    #[test]
    fn velocity_nonrelativistic_limit() {
        let (vx, _, _) = velocity_from_u(1e-4, 0.0, 0.0);
        assert!((vx / (1e-4 * C) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn velocity_bounded_by_c() {
        let (vx, vy, vz) = velocity_from_u(100.0, 50.0, 25.0);
        let v = (vx * vx + vy * vy + vz * vz).sqrt();
        assert!(v < C);
        assert!(v > 0.99 * C);
    }

    #[test]
    fn stage_particle_basics() {
        let g = geom();
        let s = stage_particle(
            &g,
            ShapeOrder::Cic,
            -1.0,
            0.5e-6,
            0.5e-6,
            0.5e-6,
            0.0,
            0.0,
            0.0,
            1.0,
        );
        assert_eq!(s.cell, [0, 0, 0]);
        assert_eq!(s.wq, [0.0, 0.0, 0.0], "at rest no current");
        assert!((s.sx[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn node_index_wraps_periodically() {
        let g = geom();
        let mut s = stage_particle(
            &g,
            ShapeOrder::Qsp,
            -1.0,
            0.1e-6,
            0.1e-6,
            0.1e-6,
            0.0,
            0.0,
            0.0,
            1.0,
        );
        s.cell = [0, 0, 0];
        // QSP starts one node below the cell: offset a=0 -> node -1 -> 7.
        let n = node_index(&g, &s, ShapeOrder::Qsp, 0, 0, 0);
        assert_eq!(n, [7 + 2, 7 + 2, 7 + 2]);
        let n2 = node_index(&g, &s, ShapeOrder::Qsp, 1, 1, 1);
        assert_eq!(n2, [2, 2, 2]);
    }

    #[test]
    fn staging_reset_sizes_buffers_exactly() {
        let mut st = Staging::default();
        st.reset(10, 4);
        st.shape[0][39] = 7.0; // Last slot of the old layout.
        assert_eq!(st.shape[0].len(), 40);
        st.reset(3, 2);
        assert_eq!(st.n, 3);
        assert_eq!(st.support(), 2);
        assert_eq!(
            st.shape[0].len(),
            6,
            "pooled buffer must shrink logically so stale terms cannot alias"
        );
        assert!(st.shape[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn addr_map_is_disjoint() {
        let mut m = Machine::new(MachineConfig::lx2());
        let map = AddrMap::new(&mut m, 1000, &[10, 20], 8 * 3 * 64);
        let mut addrs = vec![map.jx.0, map.jy.0, map.jz.0, map.staging.0];
        for t in 0..2 {
            addrs.extend(map.soa[t].iter().map(|a| a.0));
            addrs.push(map.local_index[t].0);
            addrs.push(map.rhocell[t].0);
        }
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), addrs.len(), "no duplicate bases");
    }
}
