//! The rhocell intermediate accumulator (paper section 3.4, after
//! Vincenti et al.) extended to three current components and all shape
//! orders.
//!
//! For every tile cell, the contributions of that cell's particles to its
//! `support^3` surrounding nodes are accumulated contiguously (node
//! fastest, 64-byte aligned via the virtual address map), eliminating
//! write conflicts during the particle loop. A single O(N_cells)
//! reduction then scatter-adds the accumulators onto the global current
//! arrays (equation 5).

use mpic_grid::{Array3, GridGeometry, Tile};
use mpic_machine::{Machine, Phase, VAddr, VLANES};

use crate::common::node_coord;
use crate::shape::ShapeOrder;

/// Per-tile rhocell accumulators for Jx, Jy and Jz.
#[derive(Debug, Clone)]
pub struct Rhocell {
    order: ShapeOrder,
    n_cells: usize,
    nodes: usize,
    /// Layout: `((comp * n_cells) + cell) * nodes + node`.
    data: Vec<f64>,
}

impl Rhocell {
    /// Allocates zeroed accumulators for a tile of `n_cells` cells.
    pub fn new(order: ShapeOrder, n_cells: usize) -> Self {
        let nodes = order.nodes_3d();
        Self {
            order,
            n_cells,
            nodes,
            data: vec![0.0; 3 * n_cells * nodes],
        }
    }

    /// Shape order the accumulator was built for.
    pub fn order(&self) -> ShapeOrder {
        self.order
    }

    /// Nodes per cell per component.
    pub fn nodes_per_cell(&self) -> usize {
        self.nodes
    }

    /// Total f64 footprint (for address-map sizing).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Byte footprint of the whole accumulator (all three components) —
    /// the operand span the roofline crossover compares against L1
    /// capacity when the SIMD paths stream the cell slices (the sweep
    /// interleaves components per cell, so the resident set is the full
    /// array). Passed as the `footprint` argument of the streamed
    /// machine prices.
    pub fn footprint_bytes(&self) -> u64 {
        (self.data.len() * 8) as u64
    }

    /// Whether the accumulator is empty (zero cells).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Zeroes all accumulators.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Linear element index of `(comp, cell, node)`.
    #[inline]
    pub fn index(&self, comp: usize, cell: usize, node: usize) -> usize {
        debug_assert!(comp < 3 && cell < self.n_cells && node < self.nodes);
        (comp * self.n_cells + cell) * self.nodes + node
    }

    /// Node id for support offsets `(a, b, c)` with x fastest.
    #[inline]
    pub fn node_id(&self, a: usize, b: usize, c: usize) -> usize {
        let s = self.order.support();
        (c * s + b) * s + a
    }

    /// Adds `v` to one accumulator element.
    #[inline]
    pub fn add(&mut self, comp: usize, cell: usize, node: usize, v: f64) {
        let i = self.index(comp, cell, node);
        self.data[i] += v;
    }

    /// Mutable view of one cell's accumulator for one component.
    pub fn cell_slice_mut(&mut self, comp: usize, cell: usize) -> &mut [f64] {
        let i = self.index(comp, cell, 0);
        let n = self.nodes;
        &mut self.data[i..i + n]
    }

    /// Immutable view of one cell's accumulator for one component.
    pub fn cell_slice(&self, comp: usize, cell: usize) -> &[f64] {
        let i = self.index(comp, cell, 0);
        &self.data[i..i + self.nodes]
    }

    /// Sum over all accumulators of one component (diagnostics).
    pub fn component_sum(&self, comp: usize) -> f64 {
        let base = comp * self.n_cells * self.nodes;
        self.data[base..base + self.n_cells * self.nodes]
            .iter()
            .sum()
    }

    /// Maximum nodes per cell across shape orders (QSP: 4^3 = 64), sizing
    /// the stack-resident node-index buffer of the reduction.
    const MAX_NODES: usize = 64;

    /// Grid node indices of every accumulator slot of `cell`, in node
    /// order (shared by all three components, whose arrays are congruent).
    /// Written into a caller-provided stack buffer — no allocation.
    fn cell_node_indices(
        &self,
        geom: &GridGeometry,
        tile: &Tile,
        cell: usize,
        idx: &mut [usize; Self::MAX_NODES],
    ) {
        let s = self.order.support();
        // Node offsets are identical for every particle binned in this
        // cell, and within the cell each axis contributes only `s`
        // distinct wrapped coordinates — compute those once per axis and
        // expand the s^3 product without any per-node div/mod (this runs
        // per cell in the reduction, three times per step).
        let gc = tile.global_cell(cell);
        let dims = geom.dims_with_guard();
        let mut coord = [[0usize; 4]; 3];
        for (d, cd) in coord.iter_mut().enumerate() {
            for (a, v) in cd.iter_mut().enumerate().take(s) {
                *v = node_coord(geom, self.order, d, gc[d], a);
            }
        }
        let mut nd = 0;
        for c in 0..s {
            for b in 0..s {
                let row = (coord[2][c] * dims[1] + coord[1][b]) * dims[0];
                for a in 0..s {
                    idx[nd] = row + coord[0][a];
                    nd += 1;
                }
            }
        }
    }

    /// VPU-based reduction of the accumulators onto the global current
    /// arrays (Algorithm 2 Stage 3): for every cell and component, loads
    /// the contiguous node vector and scatter-adds it to the grid.
    ///
    /// Equivalent to [`Rhocell::charge_reduction`] followed by
    /// [`Rhocell::apply_to_grid`]; the parallel driver calls the two
    /// halves separately (cost charged per worker, values applied in
    /// deterministic tile order).
    pub fn reduce_to_grid(
        &self,
        m: &mut Machine,
        geom: &GridGeometry,
        tile: &Tile,
        rho_addr: VAddr,
        j_addr: [VAddr; 3],
        jx: &mut Array3,
        jy: &mut Array3,
        jz: &mut Array3,
    ) {
        self.charge_reduction(m, geom, tile, rho_addr, j_addr);
        self.apply_to_grid(geom, tile, jx, jy, jz);
    }

    /// Charges the full instruction and memory stream of the reduction —
    /// node-vector loads plus grid scatter-adds with conflict pricing —
    /// without touching grid data. Charged to [`Phase::Reduce`].
    ///
    /// `rho_addr` is the tile's rhocell base; `j_addr` the three grid
    /// bases.
    pub fn charge_reduction(
        &self,
        m: &mut Machine,
        geom: &GridGeometry,
        tile: &Tile,
        rho_addr: VAddr,
        j_addr: [VAddr; 3],
    ) {
        m.in_phase(Phase::Reduce, |m| {
            let mut idx = [0usize; Self::MAX_NODES];
            for cell in 0..self.n_cells {
                let mut indices_ready = false;
                for comp in 0..3 {
                    let slice_start = self.index(comp, cell, 0);
                    let src = &self.data[slice_start..slice_start + self.nodes];
                    // Skip all-zero cells (common in sparse tiles) with a
                    // single masked test.
                    if src.iter().all(|&v| v == 0.0) {
                        m.s_ops(1);
                        continue;
                    }
                    if !indices_ready {
                        self.cell_node_indices(geom, tile, cell, &mut idx);
                        indices_ready = true;
                    }
                    // Process the cell's node vector in full-width chunks:
                    // CIC's 8 nodes are one register, QSP's 64 are eight.
                    let mut node = 0;
                    while node < self.nodes {
                        let n = (self.nodes - node).min(VLANES);
                        m.v_touch_load(rho_addr.offset_f64(slice_start + node), n);
                        m.v_touch_scatter_add(j_addr[comp], &idx[node..node + n]);
                        node += n;
                    }
                }
            }
        });
    }

    /// Fused-traversal cost mirror of [`Rhocell::charge_reduction`]: the
    /// lane-parallel (SIMD) reduction folds each cell's per-node vectors
    /// across **all active components in one pass** instead of sweeping
    /// the cell once per component, and this charge prices that stream
    /// through [`Machine::v_touch_reduce_block`] — scatter address
    /// generation paid once per node (not once per node per component)
    /// and each component's distinct destination cache lines charged
    /// once. The functional values are identical either way (the grid
    /// writes happen in [`Rhocell::apply_to_grid`], which both modes
    /// share), so selecting this charge changes *only* the
    /// [`Phase::Reduce`] counters. The all-zero skip test and its
    /// `s_ops(1)` charge are replicated per component exactly as in the
    /// per-component sweep, so sparse-tile pricing stays aligned.
    ///
    /// Consecutive cells in the sweep have heavily overlapping stencils,
    /// and the fused fold keeps the previous cell's destination lines in
    /// the store buffer: when the preceding folded cell had the **same
    /// active-component set**, its node list is passed as the reuse block
    /// and already-written lines charge nothing
    /// ([`Machine::v_touch_reduce_block_reuse`]). The reuse state lives
    /// inside one invocation (per tile, per call), advancing in cell
    /// order, so the charge stream is deterministic across worker counts
    /// and scheduler policies.
    pub fn charge_reduction_fused(
        &self,
        m: &mut Machine,
        geom: &GridGeometry,
        tile: &Tile,
        rho_addr: VAddr,
        j_addr: [VAddr; 3],
    ) {
        m.in_phase(Phase::Reduce, |m| {
            let mut idx = [0usize; Self::MAX_NODES];
            let mut prev_idx = [0usize; Self::MAX_NODES];
            let mut prev_live = false;
            let mut prev_mask = 0u8;
            // Roofline footprints for the streamed prices: the whole
            // accumulator on the source side (the sweep interleaves
            // components), one guarded current array on the destination
            // side (each component scatters into its own array).
            let src_footprint = self.footprint_bytes();
            let dims = geom.dims_with_guard();
            let dst_footprint = (dims[0] * dims[1] * dims[2] * 8) as u64;
            for cell in 0..self.n_cells {
                // Partial-active cells fold only their live components:
                // the component pair lists feed v_touch_reduce_block.
                let mut srcs = [VAddr(0); 3];
                let mut dsts = [VAddr(0); 3];
                let mut active = 0usize;
                let mut mask = 0u8;
                for comp in 0..3 {
                    let slice_start = self.index(comp, cell, 0);
                    let src = &self.data[slice_start..slice_start + self.nodes];
                    if src.iter().all(|&v| v == 0.0) {
                        m.s_ops(1);
                        continue;
                    }
                    srcs[active] = rho_addr.offset_f64(slice_start);
                    dsts[active] = j_addr[comp];
                    active += 1;
                    mask |= 1 << comp;
                }
                if active == 0 {
                    continue;
                }
                self.cell_node_indices(geom, tile, cell, &mut idx);
                // Reuse is only sound when the destination list pairs up
                // with the previous fold's — i.e. the same components
                // were live there.
                let prev = if prev_live && prev_mask == mask {
                    &prev_idx[..self.nodes]
                } else {
                    &[][..]
                };
                m.v_touch_reduce_block_reuse(
                    &srcs[..active],
                    &dsts[..active],
                    &idx[..self.nodes],
                    prev,
                    src_footprint,
                    dst_footprint,
                );
                prev_idx[..self.nodes].copy_from_slice(&idx[..self.nodes]);
                prev_live = true;
                prev_mask = mask;
            }
        });
    }

    /// Applies the accumulated values onto the grid (the functional half
    /// of the reduction; no cost model). Adds run in (cell, component,
    /// node) order, so calling this per tile in tile order reproduces the
    /// sequential reduction bit for bit regardless of how the rhocells
    /// were computed.
    pub fn apply_to_grid(
        &self,
        geom: &GridGeometry,
        tile: &Tile,
        jx: &mut Array3,
        jy: &mut Array3,
        jz: &mut Array3,
    ) {
        let mut idx = [0usize; Self::MAX_NODES];
        for cell in 0..self.n_cells {
            let mut indices_ready = false;
            for (comp, arr) in [&mut *jx, &mut *jy, &mut *jz].into_iter().enumerate() {
                let slice_start = self.index(comp, cell, 0);
                let src = &self.data[slice_start..slice_start + self.nodes];
                if src.iter().all(|&v| v == 0.0) {
                    continue;
                }
                if !indices_ready {
                    self.cell_node_indices(geom, tile, cell, &mut idx);
                    indices_ready = true;
                }
                let dst = arr.as_mut_slice();
                for (nd, &v) in src.iter().enumerate() {
                    dst[idx[nd]] += v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpic_machine::MachineConfig;

    fn setup() -> (GridGeometry, Tile, Machine) {
        let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [1.0e-6; 3], 2);
        let tile = Tile {
            lo: [0, 0, 0],
            hi: [8, 8, 8],
        };
        (geom, tile, Machine::new(MachineConfig::lx2()))
    }

    #[test]
    fn index_layout_is_node_fastest() {
        let r = Rhocell::new(ShapeOrder::Cic, 4);
        assert_eq!(r.index(0, 0, 1), r.index(0, 0, 0) + 1);
        assert_eq!(r.index(0, 1, 0), r.index(0, 0, 0) + 8);
        assert_eq!(r.index(1, 0, 0), r.index(0, 0, 0) + 32);
    }

    #[test]
    fn node_id_x_fastest() {
        let r = Rhocell::new(ShapeOrder::Cic, 1);
        assert_eq!(r.node_id(1, 0, 0), 1);
        assert_eq!(r.node_id(0, 1, 0), 2);
        assert_eq!(r.node_id(0, 0, 1), 4);
    }

    #[test]
    fn add_and_slices() {
        let mut r = Rhocell::new(ShapeOrder::Cic, 2);
        r.add(1, 1, 3, 2.5);
        assert_eq!(r.cell_slice(1, 1)[3], 2.5);
        assert_eq!(r.component_sum(1), 2.5);
        assert_eq!(r.component_sum(0), 0.0);
        r.clear();
        assert_eq!(r.component_sum(1), 0.0);
    }

    #[test]
    fn reduce_scatter_adds_to_grid() {
        let (geom, tile, mut m) = setup();
        let mut r = Rhocell::new(ShapeOrder::Cic, tile.num_cells());
        // Cell (0,0,0), Jx, node (1,1,1) => value lands on grid node
        // (0+1+g, 0+1+g, 0+1+g) with guard g=2.
        let node = r.node_id(1, 1, 1);
        r.add(0, 0, node, 7.0);
        let dims = geom.dims_with_guard();
        let len = dims[0] * dims[1] * dims[2];
        let mut jx = Array3::zeros(dims[0], dims[1], dims[2]);
        let mut jy = jx.clone();
        let mut jz = jx.clone();
        let rho_addr = m.mem().alloc_f64(r.len());
        let ja = [
            m.mem().alloc_f64(len),
            m.mem().alloc_f64(len),
            m.mem().alloc_f64(len),
        ];
        r.reduce_to_grid(
            &mut m, &geom, &tile, rho_addr, ja, &mut jx, &mut jy, &mut jz,
        );
        assert_eq!(jx.get(3, 3, 3), 7.0);
        assert_eq!(jx.sum(), 7.0);
        assert_eq!(jy.sum(), 0.0);
        assert!(m.counters().cycles(Phase::Reduce) > 0.0);
    }

    #[test]
    fn reduce_wraps_periodic_nodes() {
        let (geom, tile, mut m) = setup();
        let mut r = Rhocell::new(ShapeOrder::Qsp, tile.num_cells());
        // Cell (0,0,0) with QSP: node offset (0,0,0) is cell -1 -> wraps
        // to physical 7 -> guarded index 9.
        r.add(2, 0, r.node_id(0, 0, 0), 1.5);
        let dims = geom.dims_with_guard();
        let len = dims[0] * dims[1] * dims[2];
        let mut jx = Array3::zeros(dims[0], dims[1], dims[2]);
        let mut jy = jx.clone();
        let mut jz = jx.clone();
        let rho_addr = m.mem().alloc_f64(r.len());
        let ja = [
            m.mem().alloc_f64(len),
            m.mem().alloc_f64(len),
            m.mem().alloc_f64(len),
        ];
        r.reduce_to_grid(
            &mut m, &geom, &tile, rho_addr, ja, &mut jx, &mut jy, &mut jz,
        );
        assert_eq!(jz.get(9, 9, 9), 1.5);
    }

    #[test]
    fn qsp_footprint() {
        let r = Rhocell::new(ShapeOrder::Qsp, 512);
        assert_eq!(r.len(), 3 * 512 * 64);
        assert_eq!(r.nodes_per_cell(), 64);
    }

    #[test]
    fn fused_reduction_charge_undercuts_per_component_sweep() {
        // Same accumulator content, fresh machines: the fused traversal
        // must charge strictly fewer Reduce cycles — shared address
        // generation and once-per-line destination touches are the
        // saving the SIMD reduction mode claims.
        let (geom, tile, _) = setup();
        let mut r = Rhocell::new(ShapeOrder::Cic, tile.num_cells());
        // A mix of fully-active and partial-active cells.
        for cell in [0usize, 1, 9, 100] {
            for comp in 0..3 {
                if cell == 9 && comp > 0 {
                    continue; // Cell 9: Jx only (partial-active fold).
                }
                for node in 0..8 {
                    r.add(comp, cell, node, 0.5 + cell as f64 + node as f64);
                }
            }
        }
        let dims = geom.dims_with_guard();
        let len = dims[0] * dims[1] * dims[2];
        let charge = |fused: bool| -> f64 {
            let mut m = Machine::new(MachineConfig::lx2());
            let rho_addr = m.mem().alloc_f64(r.len());
            let ja = [
                m.mem().alloc_f64(len),
                m.mem().alloc_f64(len),
                m.mem().alloc_f64(len),
            ];
            if fused {
                r.charge_reduction_fused(&mut m, &geom, &tile, rho_addr, ja);
            } else {
                r.charge_reduction(&mut m, &geom, &tile, rho_addr, ja);
            }
            m.counters().cycles(Phase::Reduce)
        };
        let swept = charge(false);
        let fused = charge(true);
        assert!(
            fused < swept,
            "fused {fused} must undercut per-component {swept}"
        );
    }

    #[test]
    fn fused_reduction_charge_matches_sweep_on_empty_tiles() {
        // An all-zero rhocell charges only the per-component skip test,
        // identically in both modes: sparse-tile pricing stays aligned.
        let (geom, tile, _) = setup();
        let r = Rhocell::new(ShapeOrder::Cic, tile.num_cells());
        let dims = geom.dims_with_guard();
        let len = dims[0] * dims[1] * dims[2];
        let charge = |fused: bool| -> u64 {
            let mut m = Machine::new(MachineConfig::lx2());
            let rho_addr = m.mem().alloc_f64(r.len());
            let ja = [
                m.mem().alloc_f64(len),
                m.mem().alloc_f64(len),
                m.mem().alloc_f64(len),
            ];
            if fused {
                r.charge_reduction_fused(&mut m, &geom, &tile, rho_addr, ja);
            } else {
                r.charge_reduction(&mut m, &geom, &tile, rho_addr, ja);
            }
            m.counters().cycles(Phase::Reduce).to_bits()
        };
        assert_eq!(charge(false), charge(true));
    }
}
