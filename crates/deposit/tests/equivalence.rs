//! Cross-kernel equivalence: every deposition configuration — baseline
//! scatter, auto-vectorised rhocell, hand-tuned VPU rhocell, and the MPU
//! MatrixPIC kernel in all its ablation variants — must reproduce the
//! pure scalar reference to floating-point accumulation accuracy. This is
//! the correctness core of the whole reproduction: the paper's claim is
//! that the MPU mapping is *algebraically equivalent* to the canonical
//! scatter-add, just reorganised for outer-product hardware.

use mpic_deposit::{reference_deposit, KernelConfig, ShapeOrder};
use mpic_grid::{FieldArrays, GridGeometry, TileLayout};
use mpic_machine::{Machine, MachineConfig};
use mpic_particles::{Departure, ParticleContainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a randomized particle population across the whole domain.
fn random_container(
    geom: &GridGeometry,
    layout: &TileLayout,
    n: usize,
    seed: u64,
) -> ParticleContainer {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = ParticleContainer::new(layout, -1.602e-19, 9.109e-31);
    let hi = geom.hi();
    for _ in 0..n {
        let _ = c.inject(
            layout,
            geom,
            Departure {
                x: rng.gen_range(geom.lo[0]..hi[0]),
                y: rng.gen_range(geom.lo[1]..hi[1]),
                z: rng.gen_range(geom.lo[2]..hi[2]),
                ux: rng.gen_range(-0.5..0.5),
                uy: rng.gen_range(-0.5..0.5),
                uz: rng.gen_range(-0.5..0.5),
                w: rng.gen_range(0.5e10..2.0e10),
            },
        );
    }
    c
}

fn max_rel_err(a: &mpic_grid::Array3, b: &mpic_grid::Array3) -> f64 {
    let scale = a.max_abs().max(b.max_abs()).max(1e-300);
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() / scale)
        .fold(0.0, f64::max)
}

fn check_config(cfg: KernelConfig, order: ShapeOrder, n_particles: usize) {
    let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [0.5e-6; 3], 2);
    let layout = TileLayout::new(&geom, [4, 4, 4]);
    let mut container = random_container(&geom, &layout, n_particles, 42);
    let (rjx, rjy, rjz) = reference_deposit(&geom, order, &container);

    let mut m = Machine::new(MachineConfig::lx2());
    let mut fields = FieldArrays::new(&geom);
    let mut dep = cfg.build(order);
    dep.prepare(&mut m, &geom, &layout, &mut container);
    dep.sort_step(&mut m, &geom, &layout, &mut container, false);
    dep.deposit_step(&mut m, &geom, &layout, &container, &mut fields);

    for (name, got, want) in [
        ("jx", &fields.jx, &rjx),
        ("jy", &fields.jy, &rjy),
        ("jz", &fields.jz, &rjz),
    ] {
        let err = max_rel_err(got, want);
        assert!(
            err < 1e-12,
            "{} {:?} {}: max rel err {err}",
            cfg.label(),
            order,
            name
        );
    }
    assert!(
        m.counters().deposition_cycles() > 0.0,
        "{}: kernel must charge cycles",
        cfg.label()
    );
}

/// Runs a configuration twice — per-particle reference path and the
/// cell-run batched path — and returns the two current sets plus the
/// per-run deposition cycle totals. Both runs must match the scalar
/// reference to accumulation accuracy; how tightly batched must match
/// per-particle is the caller's claim (bitwise for rhocell/matrix,
/// tight-ULP for the regrouped direct scatter).
fn run_both_paths(
    cfg: KernelConfig,
    order: ShapeOrder,
    n_particles: usize,
) -> ([FieldArrays; 2], [f64; 2]) {
    let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [0.5e-6; 3], 2);
    let layout = TileLayout::new(&geom, [4, 4, 4]);
    let reference = {
        let container = random_container(&geom, &layout, n_particles, 42);
        reference_deposit(&geom, order, &container)
    };
    let mut out: Vec<FieldArrays> = Vec::new();
    let mut cycles = [0.0; 2];
    for (slot, batching) in [false, true].into_iter().enumerate() {
        let mut container = random_container(&geom, &layout, n_particles, 42);
        let mut m = Machine::new(MachineConfig::lx2());
        let mut fields = FieldArrays::new(&geom);
        let mut dep = cfg.build(order);
        dep.set_batching(batching);
        assert_eq!(dep.batching(), batching);
        dep.prepare(&mut m, &geom, &layout, &mut container);
        dep.sort_step(&mut m, &geom, &layout, &mut container, false);
        dep.deposit_step(&mut m, &geom, &layout, &container, &mut fields);
        for (name, got, want) in [
            ("jx", &fields.jx, &reference.0),
            ("jy", &fields.jy, &reference.1),
            ("jz", &fields.jz, &reference.2),
        ] {
            let err = max_rel_err(got, want);
            assert!(
                err < 1e-12,
                "{} {order:?} batching={batching} {name}: max rel err {err}",
                cfg.label(),
            );
        }
        cycles[slot] = m.counters().deposition_cycles();
        out.push(fields);
    }
    let b = out.pop().unwrap();
    let a = out.pop().unwrap();
    ([a, b], cycles)
}

fn assert_currents_bitwise_equal(a: &FieldArrays, b: &FieldArrays, what: &str) {
    for (name, x, y) in [
        ("jx", &a.jx, &b.jx),
        ("jy", &a.jy, &b.jy),
        ("jz", &a.jz, &b.jz),
    ] {
        let same = x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .all(|(u, v)| u.to_bits() == v.to_bits());
        assert!(same, "{what}: {name} diverged bitwise");
    }
}

#[test]
fn batched_rhocell_is_bit_identical_to_per_particle() {
    // The batched rhocell regroups through a block that starts at +0.0,
    // exactly like the rhocell slice it folds into: the accumulation
    // chain per node is the same sequence, so the result is bitwise
    // equal, not merely close.
    for order in [ShapeOrder::Cic, ShapeOrder::Tsc, ShapeOrder::Qsp] {
        let ([a, b], _) = run_both_paths(KernelConfig::RhocellIncrSortVpu, order, 200);
        assert_currents_bitwise_equal(&a, &b, "rhocell VPU");
    }
    let ([a, b], _) = run_both_paths(KernelConfig::RhocellIncrSort, ShapeOrder::Cic, 200);
    assert_currents_bitwise_equal(&a, &b, "rhocell autovec");
}

#[test]
fn batched_fullopt_is_bit_identical_to_per_particle() {
    // The matrix kernel is run-batched by construction (MPU tiles stay
    // resident per run), so the batching knob changes nothing in its
    // values — a cross-check that the knob threads through cleanly.
    let ([a, b], _) = run_both_paths(KernelConfig::FullOpt, ShapeOrder::Cic, 200);
    assert_currents_bitwise_equal(&a, &b, "FullOpt");
}

#[test]
fn batched_baseline_matches_within_ulp_and_charges_less() {
    // The direct-scatter batched path regroups cross-run adds to shared
    // stencil nodes (run subtotals instead of interleaved particles):
    // values agree to a tight ULP bound — enforced against the scalar
    // reference inside run_both_paths — and the batched sweep must
    // charge fewer deposition cycles (one address computation and one
    // scatter pass per run instead of per particle). 4000 particles in
    // 512 cells give ~8-particle runs, the regime batching targets;
    // near-empty cells (runs of length 1) are covered by the
    // empty-tile/single-run test, where batching is a wash by design.
    let (_, cycles) = run_both_paths(KernelConfig::BaselineIncrSort, ShapeOrder::Cic, 4000);
    assert!(
        cycles[1] < cycles[0],
        "batched direct scatter ({}) must undercut per-particle ({})",
        cycles[1],
        cycles[0]
    );
}

#[test]
fn batched_kernels_handle_empty_tiles_and_single_particle_runs() {
    // Five particles over sixteen tiles: most tiles empty, every run of
    // length one — the degenerate regime must stay exact.
    for cfg in [
        KernelConfig::FullOpt,
        KernelConfig::RhocellIncrSortVpu,
        KernelConfig::BaselineIncrSort,
    ] {
        let _ = run_both_paths(cfg, ShapeOrder::Cic, 5);
    }
}

#[test]
fn batching_on_unsorted_strategy_falls_back_to_reference_path() {
    // SortStrategy::None provides no cell-grouped order, so the batching
    // knob must be a no-op: identical currents AND identical deposition
    // cycles (the same per-particle sweep executed either way).
    let ([a, b], cycles) = run_both_paths(KernelConfig::HybridNoSort, ShapeOrder::Cic, 200);
    assert_currents_bitwise_equal(&a, &b, "HybridNoSort fallback");
    assert_eq!(
        cycles[0].to_bits(),
        cycles[1].to_bits(),
        "fallback must execute the identical per-particle sweep"
    );
    let ([a, b], cycles) = run_both_paths(KernelConfig::Rhocell, ShapeOrder::Cic, 200);
    assert_currents_bitwise_equal(&a, &b, "Rhocell-noSort fallback");
    assert_eq!(cycles[0].to_bits(), cycles[1].to_bits());
}

#[test]
fn baseline_matches_reference_cic() {
    check_config(KernelConfig::Baseline, ShapeOrder::Cic, 200);
}

#[test]
fn baseline_incrsort_matches_reference_cic() {
    check_config(KernelConfig::BaselineIncrSort, ShapeOrder::Cic, 200);
}

#[test]
fn rhocell_matches_reference_cic() {
    check_config(KernelConfig::Rhocell, ShapeOrder::Cic, 200);
}

#[test]
fn rhocell_incrsort_matches_reference_cic() {
    check_config(KernelConfig::RhocellIncrSort, ShapeOrder::Cic, 200);
}

#[test]
fn rhocell_vpu_matches_reference_cic() {
    check_config(KernelConfig::RhocellIncrSortVpu, ShapeOrder::Cic, 200);
}

#[test]
fn matrix_only_matches_reference_cic() {
    check_config(KernelConfig::MatrixOnly, ShapeOrder::Cic, 200);
}

#[test]
fn hybrid_nosort_matches_reference_cic() {
    check_config(KernelConfig::HybridNoSort, ShapeOrder::Cic, 200);
}

#[test]
fn hybrid_globalsort_matches_reference_cic() {
    check_config(KernelConfig::HybridGlobalSort, ShapeOrder::Cic, 200);
}

#[test]
fn fullopt_matches_reference_cic() {
    check_config(KernelConfig::FullOpt, ShapeOrder::Cic, 200);
}

#[test]
fn baseline_matches_reference_qsp() {
    check_config(KernelConfig::Baseline, ShapeOrder::Qsp, 150);
}

#[test]
fn rhocell_vpu_matches_reference_qsp() {
    check_config(KernelConfig::RhocellIncrSortVpu, ShapeOrder::Qsp, 150);
}

#[test]
fn fullopt_matches_reference_qsp() {
    check_config(KernelConfig::FullOpt, ShapeOrder::Qsp, 150);
}

#[test]
fn matrix_only_matches_reference_qsp() {
    check_config(KernelConfig::MatrixOnly, ShapeOrder::Qsp, 150);
}

#[test]
fn fullopt_matches_reference_tsc() {
    check_config(KernelConfig::FullOpt, ShapeOrder::Tsc, 150);
}

#[test]
fn rhocell_vpu_matches_reference_tsc() {
    check_config(KernelConfig::RhocellIncrSortVpu, ShapeOrder::Tsc, 150);
}

/// A dense single-cell population exercises long same-cell runs (tile
/// residency in the MPU kernel) including the odd-count tail.
#[test]
fn fullopt_dense_single_cell_odd_count() {
    let geom = GridGeometry::new([4, 4, 4], [0.0; 3], [1.0e-6; 3], 2);
    let layout = TileLayout::new(&geom, [4, 4, 4]);
    let mut rng = StdRng::seed_from_u64(7);
    let mut container = ParticleContainer::new(&layout, -1.0e-19, 9.1e-31);
    for _ in 0..33 {
        let _ = container.inject(
            &layout,
            &geom,
            Departure {
                x: rng.gen_range(1.0e-6..2.0e-6),
                y: rng.gen_range(1.0e-6..2.0e-6),
                z: rng.gen_range(1.0e-6..2.0e-6),
                ux: rng.gen_range(-1.0..1.0),
                uy: 0.3,
                uz: -0.1,
                w: 1e9,
            },
        );
    }
    let (rjx, _, _) = reference_deposit(&geom, ShapeOrder::Cic, &container);
    let mut m = Machine::new(MachineConfig::lx2());
    let mut fields = FieldArrays::new(&geom);
    let mut dep = KernelConfig::FullOpt.build(ShapeOrder::Cic);
    dep.prepare(&mut m, &geom, &layout, &mut container);
    dep.sort_step(&mut m, &geom, &layout, &mut container, false);
    dep.deposit_step(&mut m, &geom, &layout, &container, &mut fields);
    assert!(max_rel_err(&fields.jx, &rjx) < 1e-12);
}

/// Repeated steps with moving particles must stay correct (GPMA moves,
/// rebuilds and periodic wrap all on the hot path).
#[test]
fn fullopt_stays_correct_across_moving_steps() {
    let geom = GridGeometry::new([8, 8, 8], [0.0; 3], [0.5e-6; 3], 2);
    let layout = TileLayout::new(&geom, [4, 4, 4]);
    let mut container = random_container(&geom, &layout, 300, 99);
    let mut m = Machine::new(MachineConfig::lx2());
    let mut fields = FieldArrays::new(&geom);
    let mut dep = KernelConfig::FullOpt.build(ShapeOrder::Cic);
    dep.prepare(&mut m, &geom, &layout, &mut container);

    let mut rng = StdRng::seed_from_u64(5);
    for step in 0..5 {
        // Scramble positions (bounded displacement, periodic wrap).
        for tile in &mut container.tiles {
            let live: Vec<usize> = tile.soa.live_indices().collect();
            for p in live {
                let pos = geom.wrap_position([
                    tile.soa.x[p] + rng.gen_range(-0.4e-6..0.4e-6),
                    tile.soa.y[p] + rng.gen_range(-0.4e-6..0.4e-6),
                    tile.soa.z[p] + rng.gen_range(-0.4e-6..0.4e-6),
                ]);
                tile.soa.x[p] = pos[0];
                tile.soa.y[p] = pos[1];
                tile.soa.z[p] = pos[2];
            }
        }
        dep.sort_step(&mut m, &geom, &layout, &mut container, step % 3 == 2);
        container.check_invariants();
        dep.deposit_step(&mut m, &geom, &layout, &container, &mut fields);
        let (rjx, rjy, rjz) = reference_deposit(&geom, ShapeOrder::Cic, &container);
        assert!(max_rel_err(&fields.jx, &rjx) < 1e-12, "step {step} jx");
        assert!(max_rel_err(&fields.jy, &rjy) < 1e-12, "step {step} jy");
        assert!(max_rel_err(&fields.jz, &rjz) < 1e-12, "step {step} jz");
    }
}

/// Sorted configurations must spend fewer compute cycles than unsorted
/// ones at high density — the locality effect Table 1 quantifies.
#[test]
fn sorting_reduces_baseline_compute_cycles() {
    // The grid must exceed the cache hierarchy for locality to matter
    // (guarded 36^3 x 3 arrays ~ 1.1 MB > L2) and density must be high
    // enough to amortise sorting (the paper's Table 1 uses PPC = 128;
    // PPC = 8 is its stated break-even point).
    let geom = GridGeometry::new([32, 32, 32], [0.0; 3], [0.5e-6; 3], 2);
    let layout = TileLayout::new(&geom, [8, 8, 8]);
    let mut cycles = Vec::new();
    for cfg in [KernelConfig::Baseline, KernelConfig::BaselineIncrSort] {
        let mut container = random_container(&geom, &layout, 8 * 32 * 32 * 32, 11);
        let mut m = Machine::new(MachineConfig::lx2());
        let mut fields = FieldArrays::new(&geom);
        let mut dep = cfg.build(ShapeOrder::Cic);
        dep.prepare(&mut m, &geom, &layout, &mut container);
        dep.sort_step(&mut m, &geom, &layout, &mut container, false);
        dep.deposit_step(&mut m, &geom, &layout, &container, &mut fields);
        cycles.push(m.counters().cycles(mpic_machine::Phase::Compute));
    }
    assert!(
        cycles[1] < cycles[0],
        "sorted compute {} must beat unsorted {}",
        cycles[1],
        cycles[0]
    );
}
