//! # Matrix-PIC
//!
//! A Rust reproduction of *"Matrix-PIC: Harnessing Matrix Outer-product
//! for High-Performance Particle-in-Cell Simulations"* (EUROSYS '26):
//! current deposition mapped onto an emulated CPU Matrix Processing Unit
//! (8x8 FP64 outer-product-accumulate tiles), a hybrid MPU/VPU execution
//! pipeline, and an O(1)-amortised incremental particle sorter built on a
//! Gapped Packed Memory Array — embedded in a complete electromagnetic
//! PIC stack (CKC/Yee Maxwell solver, Boris pusher, SoA particle tiles,
//! moving window, laser antenna).
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`machine`] | `mpic-machine` | emulated LX2 (VPU/MPU/cache) + A800 SIMT model |
//! | [`grid`] | `mpic-grid` | 3-D arrays, Yee fields, guard cells, tiles |
//! | [`particles`] | `mpic-particles` | SoA storage, GPMA, sorting, policies |
//! | [`deposit`] | `mpic-deposit` | shape functions, rhocell, all kernels |
//! | [`solver`] | `mpic-solver` | Yee/CKC FDTD, boundaries, laser |
//! | [`push`] | `mpic-push` | field gather + Boris push |
//! | [`core`] | `mpic-core` | simulation orchestration + workloads |
//!
//! # Quickstart
//!
//! ```
//! use matrix_pic::core::workloads;
//! use matrix_pic::deposit::{KernelConfig, ShapeOrder};
//!
//! // A small uniform plasma, deposited with the full MatrixPIC stack.
//! let mut sim = workloads::uniform_plasma_sim(
//!     [8, 8, 8],
//!     4,
//!     ShapeOrder::Cic,
//!     KernelConfig::FullOpt,
//!     42,
//! );
//! sim.run(3);
//! let cfg = sim.cfg.machine.clone();
//! println!(
//!     "deposition kernel: {:.3} ms/step, {:.2e} particles/s",
//!     1e3 * sim.report().deposition_seconds(&cfg) / 3.0,
//!     sim.report().particles_per_second(&cfg),
//! );
//! ```

pub use mpic_core as core;
pub use mpic_deposit as deposit;
pub use mpic_grid as grid;
pub use mpic_machine as machine;
pub use mpic_particles as particles;
pub use mpic_push as push;
pub use mpic_solver as solver;
