//! Mini ablation study: run all five configurations of the paper's
//! Figure 10 on the same workload and print wall time + throughput.
//!
//! ```sh
//! cargo run --release --example ablation [ppc]
//! ```

use matrix_pic::core::workloads;
use matrix_pic::deposit::{KernelConfig, ShapeOrder};

fn main() {
    let ppc: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let steps = 4;
    let cells = [16, 16, 16];
    println!("ablation study: {cells:?} cells, PPC {ppc}, {steps} steps\n");
    println!(
        "{:>24} {:>12} {:>12} {:>9} {:>9} {:>7} {:>8} {:>12}",
        "configuration",
        "wall ms/st",
        "dep ms/st",
        "preproc",
        "compute",
        "sort",
        "reduce",
        "particles/s"
    );
    for kernel in KernelConfig::ABLATION {
        let mut sim = workloads::uniform_plasma_sim(cells, ppc, ShapeOrder::Cic, kernel, 7);
        if !matches!(
            kernel,
            KernelConfig::FullOpt | KernelConfig::HybridGlobalSort
        ) {
            workloads::shuffle_particles(&mut sim.electrons, &sim.geom, &sim.layout, 99);
        }
        sim.run(steps);
        let clock = sim.cfg.machine.clone();
        let rep = sim.report();
        use matrix_pic::machine::Phase;
        let ms = |p: Phase| 1e3 * clock.cycles_to_seconds(rep.phase_cycles(p)) / steps as f64;
        println!(
            "{:>24} {:>12.3} {:>12.3} {:>9.3} {:>9.3} {:>7.3} {:>8.3} {:>12.3e}",
            kernel.label(),
            1e3 * clock.cycles_to_seconds(rep.total_cycles()) / steps as f64,
            1e3 * rep.deposition_seconds(&clock) / steps as f64,
            ms(Phase::Preprocess),
            ms(Phase::Compute),
            ms(Phase::Sort),
            ms(Phase::Reduce),
            rep.particles_per_second(&clock),
        );
    }
}
