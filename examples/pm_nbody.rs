//! Appendix B generality demo: the Particle-Mesh (PM) mass deposition of
//! cosmological N-body codes is algorithmically isomorphic to PIC current
//! deposition (source = massive particles, target = density grid,
//! operation = shape-function scatter-add). This example drives the same
//! shape machinery and the MPU outer-product mapping for *mass* density,
//! showing that MatrixPIC's kernels are not electromagnetic-specific.
//!
//! ```sh
//! cargo run --release --example pm_nbody
//! ```

use matrix_pic::deposit::{stage_particle, ShapeOrder};
use matrix_pic::grid::{Array3, GridGeometry};
use matrix_pic::machine::{Machine, MachineConfig, Phase, TileId, VReg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scatter a particle's mass onto the grid via the CIC MPU mapping:
/// a pair of particles per 4x8 outer product, exactly as in the paper but
/// with mass in place of the effective current.
fn deposit_mass_mpu(
    m: &mut Machine,
    geom: &GridGeometry,
    parts: &[(f64, f64, f64, f64)], // (x, y, z, mass)
    rho: &mut Array3,
) {
    m.set_phase(Phase::Compute);
    let order = ShapeOrder::Cic;
    let mut i = 0;
    while i < parts.len() {
        let pair: Vec<_> = parts[i..(i + 2).min(parts.len())]
            .iter()
            .map(|&(x, y, z, mass)| {
                (
                    stage_particle(geom, order, 1.0, x, y, z, 0.0, 0.0, 0.0, 1.0),
                    mass,
                )
            })
            .collect();
        // A = [m1*sx0, m1*sx1 | m2*sx0, m2*sx1], B = [syz products].
        let mut a = [0.0; 8];
        let mut b = [0.0; 8];
        for (h, (st, mass)) in pair.iter().enumerate() {
            a[h * 2] = mass * st.sx[0];
            a[h * 2 + 1] = mass * st.sx[1];
            for c in 0..2 {
                for bb in 0..2 {
                    b[h * 4 + c * 2 + bb] = st.sy[bb] * st.sz[c];
                }
            }
        }
        m.t_zero(TileId(0));
        m.t_mopa(TileId(0), VReg(a), VReg(b));
        // Extract the two diagonal blocks onto the grid.
        for (h, (st, _)) in pair.iter().enumerate() {
            for c in 0..2 {
                for bb in 0..2 {
                    for aa in 0..2 {
                        let v = m.tile_value(TileId(0), h * 2 + aa, h * 4 + c * 2 + bb);
                        let n = matrix_pic::deposit::common::node_index(geom, st, order, aa, bb, c);
                        rho.add(n[0], n[1], n[2], v);
                    }
                }
            }
        }
        i += 2;
    }
}

fn main() {
    let geom = GridGeometry::new([16, 16, 16], [0.0; 3], [1.0; 3], 2);
    let dims = geom.dims_with_guard();
    let mut rho = Array3::zeros(dims[0], dims[1], dims[2]);
    let mut m = Machine::new(MachineConfig::lx2());

    // A clustered "halo" of massive particles plus a uniform background.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut parts = Vec::new();
    let mut total_mass = 0.0;
    for _ in 0..2000 {
        let r: f64 = rng.gen::<f64>().powf(2.0) * 6.0;
        let th = rng.gen::<f64>() * std::f64::consts::TAU;
        let ph = rng.gen::<f64>() * std::f64::consts::PI;
        let mass = rng.gen_range(0.5..2.0);
        parts.push((
            (8.0 + r * th.cos() * ph.sin()).rem_euclid(16.0),
            (8.0 + r * th.sin() * ph.sin()).rem_euclid(16.0),
            (8.0 + r * ph.cos()).rem_euclid(16.0),
            mass,
        ));
        total_mass += mass;
    }
    deposit_mass_mpu(&mut m, &geom, &parts, &mut rho);

    println!("PM mass deposition via MPU outer products");
    println!("  particles: {}", parts.len());
    println!("  total mass in:  {total_mass:.6}");
    println!("  total mass out: {:.6}", rho.sum());
    assert!((rho.sum() - total_mass).abs() < 1e-9 * total_mass);
    println!("  mass conserved to machine precision — CIC shapes partition unity");
    println!(
        "  MOPA instructions: {}, emulated compute: {:.3} ms",
        m.counters().mopa_ops,
        1e3 * m
            .cfg()
            .cycles_to_seconds(m.counters().cycles(Phase::Compute)),
    );
    // Radial density profile of the halo.
    println!("\n  radial density profile (halo centre at 8,8,8):");
    let g = geom.guard;
    for shell in 0..6 {
        let (mut sum, mut count) = (0.0, 0);
        for k in 0..16 {
            for j in 0..16 {
                for i in 0..16 {
                    let r2 = [(i, 8.0), (j, 8.0), (k, 8.0)]
                        .iter()
                        .map(|&(v, c)| (v as f64 + 0.5 - c).powi(2))
                        .sum::<f64>();
                    if (r2.sqrt() as usize) == shell {
                        sum += rho.get(i + g, j + g, k + g);
                        count += 1;
                    }
                }
            }
        }
        if count > 0 {
            println!(
                "    r = {shell}: <rho> = {:>8.4}  {}",
                sum / count as f64,
                "#".repeat(((sum / count as f64 * 8.0) as usize).min(60))
            );
        }
    }
}
