//! Quickstart: run a small uniform plasma with the full MatrixPIC stack
//! and print the per-phase breakdown of every step.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use matrix_pic::core::workloads;
use matrix_pic::deposit::{KernelConfig, ShapeOrder};
use matrix_pic::machine::Phase;

fn main() {
    let steps = 10;
    let mut sim = workloads::uniform_plasma_sim(
        [16, 16, 16],
        8,
        ShapeOrder::Cic,
        KernelConfig::FullOpt,
        2024,
    );
    println!(
        "Matrix-PIC quickstart: {} cells, {} particles, kernel = {}",
        sim.geom.total_cells(),
        sim.num_particles(),
        sim.kernel_name()
    );
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "step", "gather", "push", "sort", "deposit", "solve", "total [ms]"
    );
    let clock = sim.cfg.machine.clone();
    let to_ms = |cy: f64| 1e3 * clock.cycles_to_seconds(cy);
    for s in 0..steps {
        let t = sim.step();
        println!(
            "{:>4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            s,
            to_ms(t.phase(Phase::Gather)),
            to_ms(t.phase(Phase::Push)),
            to_ms(t.phase(Phase::Sort)),
            to_ms(t.phase(Phase::Preprocess) + t.phase(Phase::Compute) + t.phase(Phase::Reduce)),
            to_ms(t.phase(Phase::FieldSolve)),
            to_ms(t.total()),
        );
    }
    let rep = sim.report();
    println!(
        "\nkernel throughput: {:.3e} particles/s (emulated LX2 core)",
        rep.particles_per_second(&clock)
    );
    println!(
        "energy: field {:.3e} J, kinetic {:.3e} J; total charge {:.3e} C",
        sim.field_energy(),
        sim.kinetic_energy(),
        sim.total_charge()
    );
}
