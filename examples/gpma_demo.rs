//! GPMA in isolation: drive the gapped packed-memory array with a
//! CFL-style particle drift and print the amortised maintenance cost per
//! step — the O(1) claim of paper section 4.3.
//!
//! ```sh
//! cargo run --release --example gpma_demo
//! ```

use matrix_pic::particles::{Gpma, MoveStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n_bins = 512; // One 8x8x8 tile.
    let n_particles = 512 * 16; // PPC 16.
    let move_fraction = 0.05; // CFL keeps most particles in-cell.
    let steps = 200;

    let mut rng = StdRng::seed_from_u64(1);
    let mut cells: Vec<usize> = (0..n_particles).map(|p| p % n_bins).collect();
    let mut g = Gpma::build(&cells, n_bins, 0.5);
    println!(
        "GPMA demo: {n_bins} bins, {n_particles} particles, {:.0}% move/step",
        100.0 * move_fraction
    );
    println!(
        "{:>5} {:>8} {:>10} {:>10} {:>9} {:>9} {:>12}",
        "step", "moves", "O(1) ins", "borrows", "rebuilds", "empty%", "ops/move"
    );
    let mut total = MoveStats::default();
    for step in 0..steps {
        let movers = (n_particles as f64 * move_fraction) as usize;
        // Sample distinct particles: the per-step sweep visits each
        // particle once, so a particle gets at most one pending move.
        let mut sample: Vec<usize> = (0..n_particles).collect();
        for i in 0..movers {
            let j = rng.gen_range(i..n_particles);
            sample.swap(i, j);
        }
        for &p in sample.iter().take(movers) {
            let old = cells[p];
            // Drift to a neighbouring bin (CFL: at most one cell).
            let new = if old + 1 < n_bins && rng.gen_bool(0.5) {
                old + 1
            } else {
                old.saturating_sub(1)
            };
            if new != old {
                g.queue_move(p, old, new);
                cells[p] = new;
            }
        }
        let stats = g.apply_pending_moves(&cells);
        g.check_invariants(&cells);
        total.merge(&stats);
        if step % 25 == 0 {
            let ops = stats.o1_inserts + 6 * stats.borrow_shifts + 4 * stats.rebuild_particles;
            println!(
                "{:>5} {:>8} {:>10} {:>10} {:>9} {:>9.1} {:>12.2}",
                step,
                stats.moves_applied,
                stats.o1_inserts,
                stats.borrow_shifts,
                stats.rebuilds,
                100.0 * g.empty_ratio(),
                ops as f64 / stats.moves_applied.max(1) as f64,
            );
        }
    }
    let amortised = (total.o1_inserts + 6 * total.borrow_shifts + 4 * total.rebuild_particles)
        as f64
        / total.moves_applied.max(1) as f64;
    println!(
        "\n{} moves over {steps} steps: {:.2} index ops per move (amortised O(1)), {} rebuilds",
        total.moves_applied, amortised, total.rebuilds
    );
}
