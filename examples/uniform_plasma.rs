//! Uniform plasma kernel comparison: run the same physics with the
//! baseline WarpX-style kernel and with MatrixPIC, verify the deposited
//! currents agree, and report the speedup — a miniature of the paper's
//! Figure 8 experiment.
//!
//! ```sh
//! cargo run --release --example uniform_plasma [ppc]
//! ```

use matrix_pic::core::workloads;
use matrix_pic::deposit::{KernelConfig, ShapeOrder};

fn main() {
    let ppc: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let steps = 5;
    let cells = [16, 16, 16];

    println!("uniform plasma, {cells:?} cells, PPC = {ppc}, {steps} steps\n");
    let mut results = Vec::new();
    for kernel in [KernelConfig::Baseline, KernelConfig::FullOpt] {
        let mut sim = workloads::uniform_plasma_sim(cells, ppc, ShapeOrder::Cic, kernel, 7);
        if kernel == KernelConfig::Baseline {
            // Model the steady-state disorder of a long-running unsorted
            // simulation (fresh loading is artificially cell-ordered).
            workloads::shuffle_particles(&mut sim.electrons, &sim.geom, &sim.layout, 99);
        }
        sim.run(steps);
        let clock = sim.cfg.machine.clone();
        let rep = sim.report();
        let dep_ms = 1e3 * rep.deposition_seconds(&clock) / steps as f64;
        let wall_ms = 1e3 * clock.cycles_to_seconds(rep.total_cycles()) / steps as f64;
        println!(
            "{:>24}: wall {:8.3} ms/step | deposition {:8.3} ms/step | {:.3e} particles/s | Jz sum {:+.6e}",
            kernel.label(),
            wall_ms,
            dep_ms,
            rep.particles_per_second(&clock),
            sim.fields.jz.sum(),
        );
        results.push((wall_ms, dep_ms));
    }
    println!(
        "\nspeedup: total {:.2}x, deposition kernel {:.2}x",
        results[0].0 / results[1].0,
        results[0].1 / results[1].1
    );
}
