//! Laser-Wakefield Acceleration demo: a Gaussian pulse drives a wake in
//! a moving-window plasma while MatrixPIC handles the (heavily dynamic)
//! deposition — the paper's realistic workload (Figure 9).
//!
//! Prints wake diagnostics and the per-step sorting activity that the
//! incremental GPMA absorbs.
//!
//! ```sh
//! cargo run --release --example lwfa [ppc] [steps]
//! ```

use matrix_pic::core::workloads;
use matrix_pic::deposit::{KernelConfig, ShapeOrder};
use matrix_pic::machine::Phase;

fn main() {
    let ppc: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let steps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    let mut sim = workloads::lwfa_sim([8, 8, 64], ppc, ShapeOrder::Cic, KernelConfig::FullOpt, 3);
    let clock = sim.cfg.machine.clone();
    println!(
        "LWFA: {} cells, PPC {}, a0 = {}, moving window on",
        sim.geom.total_cells(),
        ppc,
        sim.cfg.laser.as_ref().map(|l| l.a0).unwrap_or(0.0)
    );
    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "step", "particles", "field E [J]", "kinetic [J]", "max |Ex|", "sort [us]"
    );
    for s in 0..steps {
        let t = sim.step();
        if s % 2 == 0 {
            println!(
                "{:>4} {:>10} {:>12.3e} {:>12.3e} {:>12.3e} {:>10.2}",
                s,
                sim.num_particles(),
                sim.field_energy(),
                sim.kinetic_energy(),
                sim.fields.ex.max_abs(),
                1e6 * clock.cycles_to_seconds(t.phase(Phase::Sort)),
            );
        }
    }
    let rep = sim.report();
    println!(
        "\n{} steps: wall {:.3} ms/step, deposition {:.3} ms/step, {:.3e} particles/s",
        steps,
        1e3 * clock.cycles_to_seconds(rep.total_cycles()) / steps as f64,
        1e3 * rep.deposition_seconds(&clock) / steps as f64,
        rep.particles_per_second(&clock),
    );
}
